"""Property-based tests (hypothesis) for the quantization substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant import (ActivationQuantizer, quantization_error,
                         quantize_symmetric, symmetric_scale)

finite_weights = arrays(
    dtype=np.float32, shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(-100, 100, width=32))

bits_strategy = st.integers(2, 16)


class TestSymmetricQuantProperties:
    @given(w=finite_weights, bits=bits_strategy)
    @settings(max_examples=80, deadline=None)
    def test_idempotent(self, w, bits):
        q1 = quantize_symmetric(w, bits)
        q2 = quantize_symmetric(q1, bits)
        np.testing.assert_allclose(q1, q2, atol=1e-5, rtol=1e-5)

    @given(w=finite_weights, bits=bits_strategy)
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_max_abs(self, w, bits):
        q = quantize_symmetric(w, bits)
        # equality up to float32 rounding of (w / scale) * scale
        bound = float(np.abs(w).max())
        assert np.abs(q).max() <= bound * (1 + 1e-5) + 1e-6

    @given(w=finite_weights, bits=bits_strategy)
    @settings(max_examples=80, deadline=None)
    def test_error_bounded_by_half_step(self, w, bits):
        """Every in-range weight rounds to within half a quantization step."""
        scale = float(symmetric_scale(w, bits))
        q = quantize_symmetric(w, bits)
        assert np.abs(q - w).max() <= scale / 2 + 1e-6

    @given(w=finite_weights, bits=bits_strategy)
    @settings(max_examples=80, deadline=None)
    def test_sign_preserved(self, w, bits):
        q = quantize_symmetric(w, bits)
        # quantized value never flips sign (may round to zero)
        assert ((q == 0) | (np.sign(q) == np.sign(w))).all()

    @given(w=finite_weights, bits=st.integers(2, 15))
    @settings(max_examples=60, deadline=None)
    def test_error_within_half_step_bound(self, w, bits):
        """MSE is bounded by the worst-case half-step rounding error.

        Note: pointwise MSE is *not* monotone in bits (e.g. w = [6, 1]
        quantizes exactly at 4 bits but not at 5); only this bound — which
        halves per extra bit — is a theorem.
        """
        scale = float(symmetric_scale(w, bits))
        mse_bound = (scale / 2) ** 2
        assert quantization_error(w, bits) <= mse_bound * (1 + 1e-4) + 1e-12

    @given(w=finite_weights, bits=bits_strategy,
           factor=st.floats(0.01, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_scale_equivariance(self, w, bits, factor):
        """Quantization commutes with positive rescaling of the tensor.

        Exact equivariance is a real-arithmetic theorem.  In float32 the
        two grids' scales can differ by an ulp, and a value sitting on a
        round-to-even tie (e.g. w = [100, 50] at 3 bits, where 50 maps
        to code 1.5) may round to different codes on each grid — an
        off-by-one-code disagreement.  The float32 theorem is therefore
        agreement within one step of the scaled grid.
        """
        q = quantize_symmetric(w, bits)
        q_scaled = quantize_symmetric(w * factor, bits)
        step = float(symmetric_scale(w * factor, bits))
        np.testing.assert_allclose(q * factor, q_scaled,
                                   rtol=1e-3, atol=step * (1 + 1e-4))


class TestActivationQuantProperties:
    @given(x=arrays(dtype=np.float32, shape=st.integers(2, 50),
                    elements=st.floats(-50, 50, width=32)),
           bits=st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_output_within_quantization_grid(self, x, bits):
        """Outputs live on the affine grid spanned by the (rounded)
        zero point — the calibrated range widened by at most one step."""
        q = ActivationQuantizer(bits)
        q.forward(x)
        q.freeze()
        out = q.forward(x)
        scale, zero_point = q.quant_params()
        grid_lo = (0 - zero_point) * scale
        grid_hi = (2 ** bits - 1 - zero_point) * scale
        assert out.min() >= grid_lo - 1e-4
        assert out.max() <= grid_hi + 1e-4
        lo, hi = q._range
        assert grid_lo >= lo - scale
        assert grid_hi <= hi + scale

    @given(x=arrays(dtype=np.float32, shape=st.integers(2, 50),
                    elements=st.floats(-50, 50, width=32)))
    @settings(max_examples=60, deadline=None)
    def test_8bit_error_small_relative_to_range(self, x):
        q = ActivationQuantizer(8)
        q.forward(x)
        q.freeze()
        out = q.forward(x)
        # the calibrated range is zero-anchored (zero must be exactly
        # representable), so for one-sided data it is wider than the data
        # span — the step size follows the calibrated range, not the span
        lo, hi = q._range
        step = (float(hi) - float(lo)) / 255 or 1.0
        assert np.abs(out - x).max() <= step + 1e-5

    @given(x=arrays(dtype=np.float32, shape=st.integers(2, 30),
                    elements=st.floats(-10, 10, width=32)),
           bits=st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_idempotent_after_freeze(self, x, bits):
        q = ActivationQuantizer(bits)
        q.forward(x)
        q.freeze()
        once = q.forward(x)
        twice = q.forward(once)
        np.testing.assert_allclose(once, twice, atol=1e-5)
