"""Property-based tests for Pareto logic, distances, genomes, sizes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bo import (ScalarizationConfig, dominates, hypervolume,
                      pareto_front, pareto_indices, scalarize)
from repro.space import GenomeDistance, SearchSpace

SPACE = SearchSpace("cifar10")
DIST = GenomeDistance(SPACE)


def genomes(draw, n):
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    return [SPACE.random_genome(rng) for _ in range(n)]


points = st.lists(
    st.tuples(st.floats(0.0, 1.0), st.floats(0.1, 1000.0)),
    min_size=1, max_size=40)


class TestParetoProperties:
    @given(pts=points)
    @settings(max_examples=100, deadline=None)
    def test_front_mutually_nondominated(self, pts):
        acc = [p[0] for p in pts]
        size = [p[1] for p in pts]
        front = pareto_front(acc, size)
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not dominates(a, b)

    @given(pts=points)
    @settings(max_examples=100, deadline=None)
    def test_every_point_covered(self, pts):
        acc = [p[0] for p in pts]
        size = [p[1] for p in pts]
        front = pareto_front(acc, size)
        for point in pts:
            covered = any(dominates(f, point) or f == point for f in front)
            assert covered

    @given(pts=points)
    @settings(max_examples=100, deadline=None)
    def test_front_sorted_and_increasing(self, pts):
        front = pareto_front([p[0] for p in pts], [p[1] for p in pts])
        sizes = [size for _, size in front]
        accs = [acc for acc, _ in front]
        assert sizes == sorted(sizes)
        assert accs == sorted(accs)  # along a front, bigger => more accurate

    @given(pts=points)
    @settings(max_examples=50, deadline=None)
    def test_adding_points_never_shrinks_front_quality(self, pts):
        acc = [p[0] for p in pts]
        size = [p[1] for p in pts]
        front_all = pareto_front(acc, size)
        front_partial = pareto_front(acc[: max(1, len(acc) // 2)],
                                     size[: max(1, len(size) // 2)])
        ref_size = max(s for _, s in front_all + front_partial) * 1.1
        hv_all = hypervolume(front_all, 0.0, ref_size)
        hv_partial = hypervolume(front_partial, 0.0, ref_size)
        assert hv_all >= hv_partial - 1e-9

    @given(pts=points)
    @settings(max_examples=50, deadline=None)
    def test_indices_are_valid_and_unique(self, pts):
        idx = pareto_indices([p[0] for p in pts], [p[1] for p in pts])
        assert len(set(idx)) == len(idx)
        assert all(0 <= i < len(pts) for i in idx)


class TestDistanceProperties:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_metric_axioms(self, data):
        a, b, c = genomes(data.draw, 3)
        assert DIST(a, a) == 0.0
        assert DIST(a, b) == pytest.approx(DIST(b, a))
        assert DIST(a, c) <= DIST(a, b) + DIST(b, c) + 1e-12
        assert 0.0 <= DIST(a, b) <= 1.0 + 1e-12

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_distinct_genomes_positive_distance(self, data):
        a, b = genomes(data.draw, 2)
        if a != b:
            assert DIST(a, b) > 0.0


class TestGenomeProperties:
    @given(seed=st.integers(0, 2 ** 31), n_mut=st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_mutation_closed_under_space(self, seed, n_mut):
        rng = np.random.default_rng(seed)
        genome = SPACE.random_genome(rng)
        mutant = SPACE.mutate(genome, rng, n_mutations=n_mut)
        SPACE.validate(mutant)

    @given(seed=st.integers(0, 2 ** 31))
    @settings(max_examples=50, deadline=None)
    def test_crossover_closed_under_space(self, seed):
        rng = np.random.default_rng(seed)
        a = SPACE.random_genome(rng)
        b = SPACE.random_genome(rng)
        SPACE.validate(SPACE.crossover(a, b, rng))

    @given(seed=st.integers(0, 2 ** 31))
    @settings(max_examples=50, deadline=None)
    def test_encoding_roundtrip_stability(self, seed):
        rng = np.random.default_rng(seed)
        g = SPACE.random_genome(rng)
        v1 = SPACE.encode(g)
        v2 = SPACE.encode(g)
        np.testing.assert_array_equal(v1, v2)
        assert (v1 >= 0).all() and (v1 <= 1).all()


class TestScalarizationProperties:
    CONFIG = ScalarizationConfig()

    @given(acc=st.floats(0.0, 1.0), size=st.floats(100.0, 1e9))
    @settings(max_examples=100, deadline=None)
    def test_finite(self, acc, size):
        assert np.isfinite(scalarize(acc, size, self.CONFIG))

    @given(acc=st.floats(0.0, 0.99), size=st.floats(100.0, 1e9),
           delta=st.floats(0.001, 0.01))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_accuracy(self, acc, size, delta):
        better = min(1.0, acc + delta)
        assert scalarize(better, size, self.CONFIG) > \
            scalarize(acc, size, self.CONFIG)

    @given(acc=st.floats(0.0, 1.0), size=st.floats(100.0, 1e8),
           factor=st.floats(1.01, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_size(self, acc, size, factor):
        assert scalarize(acc, size, self.CONFIG) > \
            scalarize(acc, size * factor, self.CONFIG)
