"""Integer-arithmetic equivalence of the fake-quantization pipeline.

The whole point of fake quantization is that the simulated network is
*deployable*: a real integer engine computing

    acc[n, c] = sum_d (q_x[n, d] - zp_x) * q_w[d, c]        (integers)
    y[n, c]   = acc[n, c] * s_x * s_w[c] + b[c]             (rescale)

must produce exactly what the float simulation produces.  These tests
perform that integer computation explicitly and compare it against the
framework's fake-quantized forward pass.
"""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense
from repro.quant import ActivationQuantizer, WeightQuantizer
from repro.quant.quantizers import symmetric_scale


def integer_codes(weights: np.ndarray, bits: int, axis: int):
    """Per-channel integer codes and scales (mirrors the deployed format)."""
    scales = symmetric_scale(weights, bits, axis)
    qmax = 2 ** (bits - 1) - 1
    shape = [1] * weights.ndim
    shape[axis] = -1
    codes = np.clip(np.round(weights / scales.reshape(shape)),
                    -qmax, qmax).astype(np.int64)
    return codes, scales


def activation_codes(x: np.ndarray, quantizer: ActivationQuantizer):
    scale, zero_point = quantizer.quant_params()
    n_levels = 2 ** quantizer.bits - 1
    codes = np.clip(np.round(x / scale + zero_point), 0,
                    n_levels).astype(np.int64)
    return codes, scale, zero_point


@pytest.mark.parametrize("bits", [4, 6, 8])
class TestDenseIntegerEquivalence:
    def test_matches_integer_engine(self, bits, rng):
        dense = Dense(6, 3, rng=rng)
        dense.weight_quantizer = WeightQuantizer(bits, channel_axis=1)
        dense.input_quantizer = ActivationQuantizer(8)
        x = rng.uniform(-1, 1, size=(5, 6)).astype(np.float32)
        dense.forward(x)  # calibration
        dense.input_quantizer.freeze()
        simulated = dense.forward(x)

        # explicit integer pipeline
        q_w, s_w = integer_codes(dense.weight.data, bits, axis=1)
        q_x, s_x, zp = activation_codes(x, dense.input_quantizer)
        acc = (q_x - int(zp)) @ q_w                     # pure int64 matmul
        assert acc.dtype == np.int64
        recovered = acc * s_x * s_w[None, :] + dense.bias.data
        np.testing.assert_allclose(simulated, recovered,
                                   rtol=1e-4, atol=1e-5)


class TestConv1x1IntegerEquivalence:
    def test_matches_integer_engine(self, rng):
        conv = Conv2D(4, 3, kernel=1, rng=rng)
        conv.weight_quantizer = WeightQuantizer(4, channel_axis=3)
        conv.input_quantizer = ActivationQuantizer(8)
        x = rng.uniform(-1, 1, size=(2, 3, 3, 4)).astype(np.float32)
        conv.forward(x)
        conv.input_quantizer.freeze()
        simulated = conv.forward(x)

        q_w, s_w = integer_codes(conv.weight.data, 4, axis=3)
        q_x, s_x, zp = activation_codes(x, conv.input_quantizer)
        acc = (q_x.reshape(-1, 4) - int(zp)) @ q_w.reshape(4, 3)
        recovered = (acc * s_x * s_w[None, :]).reshape(2, 3, 3, 3)
        np.testing.assert_allclose(simulated, recovered,
                                   rtol=1e-4, atol=1e-5)

    def test_accumulator_within_int32(self, rng):
        """INT8 activations x 8-bit weights over realistic reductions stay
        far inside an INT32 accumulator — the deployment assumption."""
        conv = Conv2D(1280, 100, kernel=1, rng=rng)
        q_w, _ = integer_codes(conv.weight.data, 8, axis=3)
        # worst case: all activations at the extreme code 255 - zp = 255
        worst = np.abs(q_w.reshape(1280, 100)).sum(axis=0).max() * 255
        assert worst < 2 ** 31


class TestZeroPointExactness:
    def test_zero_activation_is_exact(self, rng):
        """Zero (padding, ReLU floor) must map to an exact code so integer
        and float pipelines agree on it."""
        q = ActivationQuantizer(8)
        x = rng.uniform(-0.7, 2.0, size=(100,)).astype(np.float32)
        q.forward(x)
        q.freeze()
        out = q.forward(np.zeros(4, dtype=np.float32))
        np.testing.assert_array_equal(out, 0.0)
