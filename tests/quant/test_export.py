"""Tests for the binary deployment exporter (bit-packing and roundtrip)."""

import numpy as np
import pytest

from repro.quant import (apply_policy, calibrate, export_model,
                         exported_size_kb, import_model, model_size_kb,
                         pack_bits, unpack_bits, verify_roundtrip)
from repro.space import SearchSpace, build_model


@pytest.fixture
def quantized_model(c10_space, rng, tiny_dataset):
    model = build_model(c10_space.seed_arch(), 10, rng=rng)
    apply_policy(model, c10_space.seed_policy(4))
    calibrate(model, tiny_dataset.x_train[:32])
    return model


class TestBitPacking:
    @pytest.mark.parametrize("bits", [1, 3, 4, 5, 7, 8, 12])
    def test_roundtrip_random_codes(self, bits, rng):
        codes = rng.integers(0, 2 ** bits, size=137).astype(np.uint64)
        packed = pack_bits(codes, bits)
        recovered = unpack_bits(packed, bits, len(codes))
        np.testing.assert_array_equal(recovered, codes)

    def test_packed_length_is_dense(self, rng):
        codes = rng.integers(0, 16, size=100).astype(np.uint64)
        packed = pack_bits(codes, 4)
        assert len(packed) == 50  # 100 x 4 bits = 50 bytes

    def test_out_of_range_code_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([16], dtype=np.uint64), 4)

    def test_empty(self):
        assert pack_bits(np.array([], dtype=np.uint64), 4) == b""
        assert unpack_bits(b"", 4, 0).size == 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0], dtype=np.uint64), 0)


class TestExport:
    def test_requires_quantized_model(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        with pytest.raises(ValueError):
            export_model(model)

    def test_roundtrip_exact(self, quantized_model):
        data = export_model(quantized_model)
        errors = verify_roundtrip(quantized_model, data)
        assert errors  # every quantized layer checked
        assert max(errors.values()) < 1e-5

    def test_container_parses(self, quantized_model):
        data = export_model(quantized_model)
        layers = import_model(data)
        assert len(layers) == 23  # seed arch instantiates all slots
        for layer in layers:
            assert layer.bits == 4
            assert layer.scales.size == layer.shape[layer.channel_axis]
            assert layer.activation is not None  # calibrated

    def test_real_size_matches_accounting(self, quantized_model):
        """The actual artifact byte length must track the analytic size
        model within a small overhead (headers, padding)."""
        data = export_model(quantized_model)
        real_kb = exported_size_kb(data)
        analytic_kb = model_size_kb(quantized_model)
        assert real_kb == pytest.approx(analytic_kb, rel=0.10)

    def test_lower_bits_smaller_artifact(self, c10_space, rng,
                                         tiny_dataset):
        sizes = {}
        for bits in (4, 8):
            model = build_model(c10_space.seed_arch(), 10, rng=rng)
            apply_policy(model, c10_space.seed_policy(bits))
            calibrate(model, tiny_dataset.x_train[:32])
            sizes[bits] = len(export_model(model))
        assert sizes[4] < sizes[8]

    def test_bad_magic_rejected(self, quantized_model):
        data = export_model(quantized_model)
        with pytest.raises(ValueError):
            import_model(b"XXXX" + data[4:])

    def test_mixed_policy_respected(self, c10_space, rng, tiny_dataset):
        policy = c10_space.seed_policy(8).with_bits("conv2", 4)
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        apply_policy(model, policy)
        calibrate(model, tiny_dataset.x_train[:32])
        layers = import_model(export_model(model))
        bits_by_name = {l.name: l.bits for l in layers}
        assert bits_by_name["conv2.conv"] == 4
        assert bits_by_name["stem.conv"] == 8
