"""Tests for the binary deployment exporter (bit-packing and roundtrip)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (apply_policy, calibrate, export_model,
                         exported_size_kb, import_model, model_size_kb,
                         pack_bits, rebuild_into, unpack_bits,
                         verify_roundtrip)
from repro.space import SearchSpace, build_model


@pytest.fixture
def quantized_model(c10_space, rng, tiny_dataset):
    model = build_model(c10_space.seed_arch(), 10, rng=rng)
    apply_policy(model, c10_space.seed_policy(4))
    calibrate(model, tiny_dataset.x_train[:32])
    return model


class TestBitPacking:
    @pytest.mark.parametrize("bits", [1, 3, 4, 5, 7, 8, 12])
    def test_roundtrip_random_codes(self, bits, rng):
        codes = rng.integers(0, 2 ** bits, size=137).astype(np.uint64)
        packed = pack_bits(codes, bits)
        recovered = unpack_bits(packed, bits, len(codes))
        np.testing.assert_array_equal(recovered, codes)

    def test_packed_length_is_dense(self, rng):
        codes = rng.integers(0, 16, size=100).astype(np.uint64)
        packed = pack_bits(codes, 4)
        assert len(packed) == 50  # 100 x 4 bits = 50 bytes

    def test_out_of_range_code_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([16], dtype=np.uint64), 4)

    def test_empty(self):
        assert pack_bits(np.array([], dtype=np.uint64), 4) == b""
        assert unpack_bits(b"", 4, 0).size == 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0], dtype=np.uint64), 0)

    def test_truncated_bitstream_rejected(self):
        codes = np.arange(16, dtype=np.uint64)
        packed = pack_bits(codes, 5)
        with pytest.raises(ValueError):
            unpack_bits(packed[:-1], 5, len(codes))


def _pack_bits_reference(codes, bits: int) -> bytes:
    """The original per-code packer the vectorized version must match."""
    out = bytearray()
    acc = 0
    acc_bits = 0
    for code in codes:
        acc |= int(code) << acc_bits
        acc_bits += bits
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


class TestBitPackingProperties:
    """Hypothesis: the vectorized packer is a lossless, format-stable
    drop-in for the per-code reference (LSB-first bitstream)."""

    @given(bits=st.integers(1, 8), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_and_format(self, bits, data):
        # sizes deliberately include 0 and totals not divisible by 8
        size = data.draw(st.integers(0, 67))
        codes = np.asarray(
            data.draw(st.lists(st.integers(0, 2 ** bits - 1),
                               min_size=size, max_size=size)),
            dtype=np.uint64)
        packed = pack_bits(codes, bits)
        assert packed == _pack_bits_reference(codes, bits)
        assert len(packed) == -(-size * bits // 8)
        recovered = unpack_bits(packed, bits, size)
        np.testing.assert_array_equal(recovered, codes)
        assert recovered.dtype == np.uint64


class TestExport:
    def test_requires_quantized_model(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        with pytest.raises(ValueError):
            export_model(model)

    def test_roundtrip_exact(self, quantized_model):
        data = export_model(quantized_model)
        errors = verify_roundtrip(quantized_model, data)
        assert errors  # every quantized layer checked
        assert max(errors.values()) < 1e-5

    def test_container_parses(self, quantized_model):
        data = export_model(quantized_model)
        layers = import_model(data)
        assert len(layers) == 23  # seed arch instantiates all slots
        for layer in layers:
            assert layer.bits == 4
            assert layer.scales.size == layer.shape[layer.channel_axis]
            assert layer.activation is not None  # calibrated

    def test_real_size_matches_accounting(self, quantized_model):
        """The actual artifact byte length must track the analytic size
        model within a small overhead (headers, padding)."""
        data = export_model(quantized_model)
        real_kb = exported_size_kb(data)
        analytic_kb = model_size_kb(quantized_model)
        assert real_kb == pytest.approx(analytic_kb, rel=0.10)

    def test_lower_bits_smaller_artifact(self, c10_space, rng,
                                         tiny_dataset):
        sizes = {}
        for bits in (4, 8):
            model = build_model(c10_space.seed_arch(), 10, rng=rng)
            apply_policy(model, c10_space.seed_policy(bits))
            calibrate(model, tiny_dataset.x_train[:32])
            sizes[bits] = len(export_model(model))
        assert sizes[4] < sizes[8]

    def test_bad_magic_rejected(self, quantized_model):
        data = export_model(quantized_model)
        with pytest.raises(ValueError):
            import_model(b"XXXX" + data[4:])

    def test_mixed_policy_respected(self, c10_space, rng, tiny_dataset):
        policy = c10_space.seed_policy(8).with_bits("conv2", 4)
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        apply_policy(model, policy)
        calibrate(model, tiny_dataset.x_train[:32])
        layers = import_model(export_model(model))
        bits_by_name = {l.name: l.bits for l in layers}
        assert bits_by_name["conv2.conv"] == 4
        assert bits_by_name["stem.conv"] == 8

    def test_depthwise_layers_roundtrip(self, quantized_model):
        """Depthwise weights (channel axis 2, 3-D shape) survive export."""
        layers = import_model(export_model(quantized_model))
        depthwise = [l for l in layers if ".dw" in l.name]
        assert depthwise
        for layer in depthwise:
            assert len(layer.shape) == 3
            assert layer.channel_axis == 2
            assert layer.scales.size == layer.shape[2]
            assert layer.codes.size == int(np.prod(layer.shape))

    def test_biasless_layers_store_empty_bias(self, quantized_model):
        """MobileNetV2 convs carry no bias; only the classifier does."""
        layers = import_model(export_model(quantized_model))
        by_name = {l.name: l for l in layers}
        assert by_name["stem.conv"].bias.size == 0
        dense = [l for l in layers if len(l.shape) == 2]
        assert dense and all(l.bias.size == l.shape[1] for l in dense)

    def test_uncalibrated_activation_nan_sentinel(self, c10_space, rng):
        """No calibration -> act recorded absent (bits 0, NaN range)."""
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        apply_policy(model, c10_space.seed_policy(4))
        layers = import_model(export_model(model))
        for layer in layers:
            assert layer.act_bits == 0
            assert layer.act_range is None
            assert layer.activation is None


class TestRebuild:
    def test_rebuilt_logits_bit_identical(self, quantized_model, c10_space,
                                          tiny_dataset):
        """A model rebuilt from the container alone reproduces the exact
        logits of the pre-export quantized model."""
        data = export_model(quantized_model)
        fresh = build_model(c10_space.seed_arch(), 10,
                            rng=np.random.default_rng(0))
        rebuild_into(fresh, data)
        quantized_model.set_training(False)
        fresh.set_training(False)
        x = tiny_dataset.x_test[:16]
        expected = quantized_model.forward(x)
        np.testing.assert_array_equal(fresh.forward(x), expected)

    def test_rebuild_is_idempotent_on_grid(self, quantized_model,
                                           c10_space):
        """Re-exporting a rebuilt model yields byte-identical containers
        (the pinned scales keep weights exactly on their grid)."""
        data = export_model(quantized_model)
        fresh = build_model(c10_space.seed_arch(), 10,
                            rng=np.random.default_rng(0))
        rebuild_into(fresh, data)
        assert export_model(fresh) == data

    def test_rebuild_rejects_architecture_mismatch(self, quantized_model,
                                                   c10_space, rng):
        data = export_model(quantized_model)
        other = build_model(c10_space.seed_arch(), 100, rng=rng)
        with pytest.raises(ValueError):
            rebuild_into(other, data)
