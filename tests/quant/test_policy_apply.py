"""Tests for quantization policies and attaching them to models."""

import numpy as np
import pytest

from repro.nn import evaluate_classifier, state_dict, load_state_dict
from repro.quant import (QuantizationPolicy, apply_policy, bake_weights,
                         calibrate, is_quantized, quantizable_layers,
                         quantization_aware_finetune, remove_quantizers)
from repro.space import SearchSpace, build_model, quantization_slot_names


@pytest.fixture
def seed_model(c10_space, rng):
    return build_model(c10_space.seed_arch(), num_classes=10, rng=rng)


class TestQuantizationPolicy:
    def test_homogeneous(self):
        policy = QuantizationPolicy.homogeneous(["a", "b"], 8)
        assert policy.bits_for("a") == 8
        assert policy.is_homogeneous()
        assert policy.mean_bits() == 8

    def test_mixed_stats(self):
        policy = QuantizationPolicy({"a": 4, "b": 8, "c": 6})
        assert policy.min_bits() == 4
        assert policy.max_bits() == 8
        assert policy.mean_bits() == 6
        assert not policy.is_homogeneous()

    def test_invalid_bitwidth_rejected(self):
        with pytest.raises(ValueError):
            QuantizationPolicy({"a": 3})

    def test_custom_allowed(self):
        policy = QuantizationPolicy({"a": 2}, allowed=(2, 16))
        assert policy.bits_for("a") == 2

    def test_unknown_slot_raises(self):
        policy = QuantizationPolicy({"a": 4})
        with pytest.raises(KeyError):
            policy.bits_for("zzz")

    def test_with_bits_copies(self):
        policy = QuantizationPolicy({"a": 4, "b": 8})
        updated = policy.with_bits("a", 6)
        assert updated.bits_for("a") == 6
        assert policy.bits_for("a") == 4

    def test_equality_and_hash(self):
        a = QuantizationPolicy({"x": 4, "y": 8})
        b = QuantizationPolicy({"y": 8, "x": 4})
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QuantizationPolicy({})

    def test_slot_names_are_23(self):
        assert len(quantization_slot_names()) == 23


class TestApplyPolicy:
    def test_all_layers_quantized(self, seed_model, c10_space):
        layers = apply_policy(seed_model, c10_space.seed_policy(8))
        assert layers == quantizable_layers(seed_model)
        assert is_quantized(seed_model)
        for layer in layers:
            assert layer.weight_quantizer is not None
            assert layer.input_quantizer is not None

    def test_slot_bits_respected(self, seed_model, c10_space):
        policy = c10_space.seed_policy(8).with_bits("stem", 4)
        apply_policy(seed_model, policy)
        for layer in quantizable_layers(seed_model):
            expected = 4 if layer.quant_slot == "stem" else 8
            assert layer.weight_quantizer.bits == expected

    def test_untagged_layer_raises(self, rng):
        from repro.nn import Conv2D, GlobalAvgPool2D, Dense, Sequential
        model = Sequential([Conv2D(3, 4, 3, rng=rng), GlobalAvgPool2D(),
                            Dense(4, 2, rng=rng)])
        with pytest.raises(ValueError):
            apply_policy(model, QuantizationPolicy({"stem": 8}))

    def test_remove_restores_float(self, seed_model, c10_space, rng,
                                   tiny_dataset):
        x = tiny_dataset.x_train[:16]
        before = seed_model.predict(x)
        apply_policy(seed_model, c10_space.seed_policy(4))
        calibrate(seed_model, x)
        quantized = seed_model.predict(x)
        remove_quantizers(seed_model)
        after = seed_model.predict(x)
        np.testing.assert_allclose(before, after, rtol=1e-6)
        assert not np.allclose(before, quantized)


class TestCalibrate:
    def test_freezes_all_quantizers(self, seed_model, c10_space,
                                    tiny_dataset):
        apply_policy(seed_model, c10_space.seed_policy(8))
        calibrate(seed_model, tiny_dataset.x_train, batch_size=32)
        for layer in quantizable_layers(seed_model):
            assert layer.input_quantizer.frozen

    def test_without_apply_raises(self, seed_model, tiny_dataset):
        with pytest.raises(RuntimeError):
            calibrate(seed_model, tiny_dataset.x_train)

    def test_ptq_8bit_accuracy_close_to_float(self, seed_model, c10_space,
                                              tiny_dataset, rng):
        # train briefly so accuracy is non-degenerate
        from repro.nn import SGD, ConstantLR, Trainer
        trainer = Trainer(seed_model,
                          SGD(seed_model.parameters(), ConstantLR(0.05)))
        trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train, epochs=2,
                    batch_size=32, rng=rng)
        _, fp_acc = evaluate_classifier(seed_model, tiny_dataset.x_test,
                                        tiny_dataset.y_test)
        apply_policy(seed_model, c10_space.seed_policy(8))
        calibrate(seed_model, tiny_dataset.x_train)
        _, q_acc = evaluate_classifier(seed_model, tiny_dataset.x_test,
                                       tiny_dataset.y_test)
        assert abs(q_acc - fp_acc) <= 0.15


class TestQAFT:
    def test_requires_quantizers(self, seed_model, tiny_dataset):
        with pytest.raises(RuntimeError):
            quantization_aware_finetune(seed_model, tiny_dataset.x_train,
                                        tiny_dataset.y_train)

    def test_updates_latent_weights(self, seed_model, c10_space,
                                    tiny_dataset, rng):
        apply_policy(seed_model, c10_space.seed_policy(4))
        calibrate(seed_model, tiny_dataset.x_train)
        before = state_dict(seed_model)
        quantization_aware_finetune(seed_model, tiny_dataset.x_train,
                                    tiny_dataset.y_train, epochs=1,
                                    batch_size=32, rng=rng)
        after = state_dict(seed_model)
        changed = any(not np.allclose(before[k], after[k])
                      for k in before if k.startswith("param_"))
        assert changed

    def test_zero_epochs_noop(self, seed_model, c10_space, tiny_dataset,
                              rng):
        apply_policy(seed_model, c10_space.seed_policy(4))
        calibrate(seed_model, tiny_dataset.x_train)
        before = state_dict(seed_model)
        quantization_aware_finetune(seed_model, tiny_dataset.x_train,
                                    tiny_dataset.y_train, epochs=0, rng=rng)
        after = state_dict(seed_model)
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestBakeWeights:
    def test_baked_weights_fixed_point(self, seed_model, c10_space,
                                       tiny_dataset):
        apply_policy(seed_model, c10_space.seed_policy(4))
        calibrate(seed_model, tiny_dataset.x_train)
        bake_weights(seed_model)
        # after baking, re-quantization is a no-op (weights on the grid)
        for layer in quantizable_layers(seed_model):
            w = layer.weight.data
            np.testing.assert_allclose(layer.weight_quantizer.forward(w), w,
                                       atol=1e-5)
