"""Tests for model size-on-disk accounting."""

import pytest

from repro.quant import (BITS_PER_KB, apply_policy, bitwidth_by_layer,
                         calibrate, layer_sizes, model_size_bits,
                         model_size_kb, size_report)
from repro.space import SearchSpace, build_model


@pytest.fixture
def seed_model(c10_space, rng):
    return build_model(c10_space.seed_arch(), num_classes=10, rng=rng)


class TestModelSize:
    def test_seed_at_8bit_matches_paper_table2(self, seed_model, c10_space):
        """The 8-bit seed MobileNetV2 weighs 76.08 kB in the paper's
        Table II; our accounting convention lands on the same value."""
        kb = model_size_kb(seed_model, c10_space.seed_policy(8))
        assert kb == pytest.approx(76.08, abs=0.15)

    def test_4bit_roughly_halves_8bit(self, seed_model, c10_space):
        kb8 = model_size_kb(seed_model, c10_space.seed_policy(8))
        kb4 = model_size_kb(seed_model, c10_space.seed_policy(4))
        # overheads (biases/scales) keep it above exactly half
        assert 0.5 < kb4 / kb8 < 0.75

    def test_float_baseline_larger(self, seed_model, c10_space):
        fp_bits = model_size_bits(seed_model)  # no quantizers attached
        q_bits = model_size_bits(seed_model, c10_space.seed_policy(8))
        assert fp_bits > q_bits

    def test_policy_and_attached_quantizers_agree(self, seed_model,
                                                  c10_space, tiny_dataset):
        policy = c10_space.seed_policy(5)
        from_policy = model_size_bits(seed_model, policy)
        apply_policy(seed_model, policy)
        calibrate(seed_model, tiny_dataset.x_train[:32])
        from_quantizers = model_size_bits(seed_model)
        assert from_policy == from_quantizers

    def test_bits_kb_conversion(self, seed_model, c10_space):
        policy = c10_space.seed_policy(8)
        bits = model_size_bits(seed_model, policy)
        assert model_size_kb(seed_model, policy) == bits / BITS_PER_KB

    def test_layer_sizes_sum_to_total(self, seed_model, c10_space):
        policy = c10_space.seed_policy(6)
        sizes = layer_sizes(seed_model, policy)
        assert sum(s.total_bits for s in sizes) == \
            model_size_bits(seed_model, policy)

    def test_every_quantizable_layer_listed(self, seed_model, c10_space):
        sizes = layer_sizes(seed_model, c10_space.seed_policy(8))
        slots = {s.slot for s in sizes}
        # the seed arch instantiates every slot exactly once
        assert slots == set(c10_space.slot_names)

    def test_mixed_policy_changes_per_layer_bits(self, seed_model,
                                                 c10_space):
        policy = c10_space.seed_policy(8).with_bits("conv2", 4)
        by_layer = bitwidth_by_layer(seed_model, policy)
        conv2_entries = [b for name, b in by_layer.items()
                         if name.startswith("conv2")]
        assert conv2_entries == [4]
        assert set(by_layer.values()) == {4, 8}

    def test_size_report_renders(self, seed_model, c10_space):
        report = size_report(seed_model, c10_space.seed_policy(8))
        assert "TOTAL" in report
        assert "stem" in report

    def test_lower_bits_monotone_smaller(self, seed_model, c10_space):
        sizes = [model_size_bits(seed_model, c10_space.seed_policy(b))
                 for b in (4, 5, 6, 7, 8)]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))
