"""Tests for the weight and activation fake quantizers."""

import numpy as np
import pytest

from repro.quant import (ActivationQuantizer, WeightQuantizer,
                         quantization_error, quantize_symmetric,
                         symmetric_scale)
from repro.quant.observers import MinMaxObserver


class TestSymmetricQuantization:
    def test_scale_maps_max_to_top_level(self, rng):
        w = rng.normal(size=(3, 3, 4)).astype(np.float32)
        scale = symmetric_scale(w, bits=8)
        assert scale == pytest.approx(np.abs(w).max() / 127)

    def test_per_channel_scales(self, rng):
        w = np.zeros((2, 2, 3), dtype=np.float32)
        w[..., 0] = 1.0
        w[..., 1] = 2.0
        w[..., 2] = 4.0
        scale = symmetric_scale(w, bits=4, channel_axis=2)
        qmax = 2 ** 3 - 1
        np.testing.assert_allclose(scale, [1 / qmax, 2 / qmax, 4 / qmax])

    def test_zero_channel_safe(self):
        w = np.zeros((2, 2, 2), dtype=np.float32)
        w[..., 1] = 1.0
        scale = symmetric_scale(w, bits=8, channel_axis=2)
        assert scale[0] == 1.0  # guarded, no division by zero downstream
        q = quantize_symmetric(w, bits=8, channel_axis=2)
        assert np.isfinite(q).all()

    def test_quantized_values_on_grid(self, rng):
        w = rng.normal(size=(5, 5)).astype(np.float32)
        q = quantize_symmetric(w, bits=4)
        scale = symmetric_scale(w, bits=4)
        levels = q / scale
        np.testing.assert_allclose(levels, np.round(levels), atol=1e-4)
        assert np.abs(levels).max() <= 7

    def test_idempotent(self, rng):
        w = rng.normal(size=(4, 4)).astype(np.float32)
        q1 = quantize_symmetric(w, bits=5)
        q2 = quantize_symmetric(q1, bits=5)
        np.testing.assert_allclose(q1, q2, atol=1e-6)

    def test_error_decreases_with_bits(self, rng):
        w = rng.normal(size=(100,)).astype(np.float32)
        errors = [quantization_error(w, bits) for bits in (4, 5, 6, 7, 8)]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_high_bits_near_lossless(self, rng):
        w = rng.normal(size=(50,)).astype(np.float32)
        assert quantization_error(w, 16) < 1e-8

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            symmetric_scale(np.ones(3), bits=1)


class TestWeightQuantizer:
    def test_forward_quantizes(self, rng):
        q = WeightQuantizer(4, channel_axis=None)
        w = rng.normal(size=(6, 6)).astype(np.float32)
        np.testing.assert_allclose(q.forward(w),
                                   quantize_symmetric(w, 4), atol=1e-6)

    def test_backward_is_identity(self, rng):
        q = WeightQuantizer(4)
        g = rng.normal(size=(3, 3)).astype(np.float32)
        np.testing.assert_array_equal(q.backward(g), g)

    def test_32bit_passthrough(self, rng):
        q = WeightQuantizer(32)
        w = rng.normal(size=(3,)).astype(np.float32)
        assert q.forward(w) is w

    def test_num_scales(self):
        q = WeightQuantizer(4, channel_axis=3)
        assert q.num_scales((3, 3, 2, 16)) == 16
        assert WeightQuantizer(4).num_scales((3, 3, 2, 16)) == 1

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            WeightQuantizer(1)
        with pytest.raises(ValueError):
            WeightQuantizer(33)


class TestActivationQuantizer:
    def test_calibration_passthrough_then_quantize(self, rng):
        q = ActivationQuantizer(8)
        x = rng.uniform(-1, 3, size=(4, 4)).astype(np.float32)
        out = q.forward(x)
        np.testing.assert_array_equal(out, x)  # calibrating: identity
        q.freeze()
        out = q.forward(x)
        assert not np.array_equal(out, x)  # now quantized
        np.testing.assert_allclose(out, x, atol=0.05)  # but close at 8 bits

    def test_freeze_requires_observation(self):
        q = ActivationQuantizer(8)
        with pytest.raises(RuntimeError):
            q.freeze()

    def test_range_contains_zero(self):
        q = ActivationQuantizer(8)
        q.forward(np.array([[2.0, 3.0]], dtype=np.float32))
        q.freeze()
        scale, zero_point = q.quant_params()
        # zero must be exactly representable
        assert zero_point == round(zero_point)
        dequantized_zero = (zero_point - zero_point) * scale
        assert dequantized_zero == 0.0

    def test_values_on_affine_grid(self, rng):
        q = ActivationQuantizer(4)
        x = rng.uniform(-2, 2, size=(100,)).astype(np.float32)
        q.forward(x)
        q.freeze()
        out = q.forward(x)
        scale, zp = q.quant_params()
        levels = out / scale + zp
        np.testing.assert_allclose(levels, np.round(levels), atol=1e-3)
        assert levels.min() >= -1e-3
        assert levels.max() <= 2 ** 4 - 1 + 1e-3

    def test_backward_masks_clipped(self):
        q = ActivationQuantizer(8, observer=MinMaxObserver())
        q.forward(np.array([0.0, 1.0], dtype=np.float32))
        q.freeze()
        x = np.array([-5.0, 0.5, 5.0], dtype=np.float32)
        q.forward(x)
        grad = q.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_array_equal(grad, [0.0, 1.0, 0.0])

    def test_backward_passthrough_while_calibrating(self, rng):
        q = ActivationQuantizer(8)
        g = rng.normal(size=(3,)).astype(np.float32)
        np.testing.assert_array_equal(q.backward(g), g)

    def test_quant_params_before_freeze_raises(self):
        with pytest.raises(RuntimeError):
            ActivationQuantizer(8).quant_params()

    def test_lower_bits_coarser(self, rng):
        x = rng.uniform(-1, 1, size=(1000,)).astype(np.float32)
        errors = []
        for bits in (8, 4, 2):
            q = ActivationQuantizer(bits)
            q.forward(x)
            q.freeze()
            errors.append(float(np.abs(q.forward(x) - x).mean()))
        assert errors[0] < errors[1] < errors[2]
