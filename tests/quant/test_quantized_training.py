"""Tests for training *through* quantizers (the STE path end to end)."""

import numpy as np
import pytest

from repro.nn import (SGD, ConstantLR, Conv2D, Dense, GlobalAvgPool2D,
                      Sequential, SoftmaxCrossEntropy, Trainer,
                      check_module_gradients)
from repro.quant import ActivationQuantizer, WeightQuantizer


def quantized_conv(rng, bits=4):
    conv = Conv2D(2, 3, kernel=3, rng=rng)
    conv.weight_quantizer = WeightQuantizer(bits, channel_axis=3)
    return conv


class TestSTEGradients:
    def test_weight_ste_gradient_flows(self, rng):
        conv = quantized_conv(rng)
        conv.set_training(True)
        x = rng.normal(size=(2, 5, 5, 2)).astype(np.float32)
        out = conv.forward(x)
        conv.zero_grad()
        conv.backward(np.ones_like(out))
        assert conv.weight.grad is not None
        assert np.abs(conv.weight.grad).sum() > 0

    def test_forward_uses_quantized_weights(self, rng):
        conv = quantized_conv(rng, bits=2)
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
        quantized_out = conv.forward(x)
        conv.weight_quantizer = None
        float_out = conv.forward(x)
        assert not np.allclose(quantized_out, float_out)

    def test_activation_quantizer_gradcheck_interior(self, rng):
        """With inputs strictly inside the calibrated range, fake-quant is
        piecewise constant — STE passes gradient through; the analytic
        input gradient of the surrounding conv must still be usable (we
        check the conv's weight gradient against finite differences of the
        *quantized* loss is NOT expected to match, so instead verify the
        mask semantics)."""
        q = ActivationQuantizer(8)
        x = rng.uniform(-1, 1, size=(4, 4)).astype(np.float32)
        q.forward(x)
        q.freeze()
        q.forward(x)
        grad = rng.normal(size=(4, 4)).astype(np.float32)
        out_grad = q.backward(grad)
        np.testing.assert_array_equal(out_grad, grad)  # all in range

    def test_dense_with_quantizers_trains(self, rng):
        dense = Dense(4, 2, rng=rng)
        dense.weight_quantizer = WeightQuantizer(4, channel_axis=1)
        x = rng.normal(size=(64, 4)).astype(np.float32)
        labels = (x[:, 0] > 0).astype(np.int64)
        loss_fn = SoftmaxCrossEntropy()
        opt = SGD([dense.weight, dense.bias], ConstantLR(0.1))
        losses = []
        for _ in range(30):
            logits = dense.forward(x)
            losses.append(loss_fn.forward(logits, labels))
            dense.weight.zero_grad()
            dense.bias.zero_grad()
            dense.backward(loss_fn.backward())
            opt.step()
        assert losses[-1] < losses[0]


class TestQuantizedNetworkTraining:
    def test_network_trains_through_fake_quant(self, rng):
        """A small quantized network must still reduce its loss — the
        property QAFT depends on."""
        conv = Conv2D(3, 4, kernel=3, rng=rng)
        conv.weight_quantizer = WeightQuantizer(4, channel_axis=3)
        dense = Dense(4, 2, rng=rng)
        dense.weight_quantizer = WeightQuantizer(4, channel_axis=1)
        net = Sequential([conv, GlobalAvgPool2D(), dense])
        x = rng.normal(size=(64, 6, 6, 3)).astype(np.float32)
        labels = (x.mean(axis=(1, 2, 3)) > 0).astype(np.int64)
        trainer = Trainer(net, SGD(net.parameters(), ConstantLR(0.1)))
        history = trainer.fit(x, labels, epochs=10, batch_size=16, rng=rng)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_latent_weights_stay_float(self, rng):
        """QAFT keeps full-precision latent weights; only the forward view
        is quantized."""
        conv = quantized_conv(rng, bits=2)
        conv.set_training(True)
        x = rng.normal(size=(8, 5, 5, 2)).astype(np.float32)
        opt = SGD([conv.weight], ConstantLR(0.05))
        for _ in range(3):
            out = conv.forward(x)
            conv.zero_grad()
            conv.backward(np.ones_like(out))
            opt.step()
        w = conv.weight.data
        q = conv.weight_quantizer.forward(w)
        # latent weights have drifted off the 2-bit grid
        assert not np.allclose(w, q)
