"""Tests for calibration observers."""

import numpy as np
import pytest

from repro.quant import (MinMaxObserver, MovingAverageObserver,
                         PercentileObserver, make_observer)


class TestMinMaxObserver:
    def test_tracks_extremes_across_batches(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-3.0, 0.5]))
        lo, hi = obs.range()
        assert lo == -3.0
        assert hi == 2.0

    def test_range_includes_zero(self):
        obs = MinMaxObserver()
        obs.observe(np.array([5.0, 6.0]))
        lo, hi = obs.range()
        assert lo == 0.0
        assert hi == 6.0

    def test_unobserved_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().range()

    def test_empty_tensor_raises(self):
        with pytest.raises(ValueError):
            MinMaxObserver().observe(np.array([]))

    def test_reset(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0]))
        obs.reset()
        assert not obs.calibrated

    def test_degenerate_range_widened(self):
        obs = MinMaxObserver()
        obs.observe(np.array([0.0, 0.0]))
        lo, hi = obs.range()
        assert hi > lo


class TestMovingAverageObserver:
    def test_first_batch_initializes(self):
        obs = MovingAverageObserver(momentum=0.9)
        obs.observe(np.array([-1.0, 4.0]))
        assert obs.min_val == -1.0
        assert obs.max_val == 4.0

    def test_outlier_damped(self):
        obs = MovingAverageObserver(momentum=0.9)
        for _ in range(10):
            obs.observe(np.array([-1.0, 1.0]))
        obs.observe(np.array([-1.0, 100.0]))
        assert obs.max_val < 12.0  # single outlier does not dominate

    def test_converges_to_stationary(self):
        obs = MovingAverageObserver(momentum=0.5)
        for _ in range(30):
            obs.observe(np.array([-2.0, 3.0]))
        assert obs.min_val == pytest.approx(-2.0, abs=1e-6)
        assert obs.max_val == pytest.approx(3.0, abs=1e-6)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            MovingAverageObserver(momentum=1.0)


class TestPercentileObserver:
    def test_clips_outliers(self, rng):
        obs = PercentileObserver(percentile=99.0)
        data = rng.normal(size=100_000).astype(np.float32)
        data[0] = 1000.0
        obs.observe(data)
        assert obs.max_val < 10.0

    def test_tighter_than_minmax(self, rng):
        data = rng.normal(size=50_000).astype(np.float32)
        pct = PercentileObserver(percentile=99.0)
        mm = MinMaxObserver()
        pct.observe(data)
        mm.observe(data)
        assert pct.max_val < mm.max_val
        assert pct.min_val > mm.min_val

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=40.0)


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_observer("minmax"), MinMaxObserver)
        assert isinstance(make_observer("moving_average"),
                          MovingAverageObserver)
        assert isinstance(make_observer("percentile"), PercentileObserver)

    def test_kwargs_forwarded(self):
        obs = make_observer("percentile", percentile=95.0)
        assert obs.percentile == 95.0

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_observer("median")
