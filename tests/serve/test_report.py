"""SLO report: stats parsing, percentile rendering, breach detection."""

import json

import pytest

from repro.serve.report import (ModelSLO, ServeStatsError, build_report,
                                load_serve_stats, render_serve_report,
                                validate_serve_stats)


def stats_payload(p99_s=0.010, slo_p99_ms=None, requests=64):
    return {
        "schema": 1,
        "started_at": 100.0, "stopped_at": 160.0,
        "draining": True, "drained_cleanly": True, "flushed_requests": 0,
        "config": {"max_batch": 8, "max_wait_ms": 5.0, "queue_depth": 64,
                   "workers_per_model": 1, "slo_p99_ms": slo_p99_ms},
        "host": {"cpus": 4},
        "models": [{"name": "m", "path": "m.bomp"}],
        "metrics": {
            "serve.requests": {"type": "counter", "value": requests},
            "serve.shed": {"type": "counter", "value": 2},
            "serve.m.requests": {"type": "counter", "value": requests},
            "serve.m.batches": {"type": "counter", "value": 9},
            "serve.m.shed": {"type": "counter", "value": 2},
            "serve.m.timeouts": {"type": "counter", "value": 1},
            "serve.m.errors": {"type": "counter", "value": 0},
            "serve.m.batch_size": {"type": "histogram", "count": 9,
                                   "mean": 7.1},
            "serve.m.latency_s": {"type": "histogram", "count": requests,
                                  "p50": 0.004, "p95": 0.008,
                                  "p99": p99_s},
        },
    }


class TestLoading:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ServeStatsError, match="no serve stats"):
            load_serve_stats(tmp_path)

    def test_dir_resolves_to_stats_file(self, tmp_path):
        (tmp_path / "serve_stats.json").write_text(
            json.dumps(stats_payload()))
        assert load_serve_stats(tmp_path)["schema"] == 1

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "serve_stats.json"
        path.write_text("{nope")
        with pytest.raises(ServeStatsError, match="invalid JSON"):
            load_serve_stats(path)

    def test_validate_flags_problems(self):
        assert validate_serve_stats(stats_payload()) == []
        broken = stats_payload()
        broken["schema"] = 99
        broken["models"] = "nope"
        del broken["host"]
        problems = validate_serve_stats(broken)
        assert len(problems) == 3


class TestReport:
    def test_percentiles_in_ms(self, tmp_path):
        (tmp_path / "serve_stats.json").write_text(
            json.dumps(stats_payload()))
        report = build_report(tmp_path)
        model = report.models[0]
        assert model.p50_ms == 4.0 and model.p99_ms == 10.0
        assert model.requests == 64 and model.shed == 2
        assert model.slo_ok is None            # no target configured
        assert report.ok()

    def test_slo_breach_fails_report(self, tmp_path):
        (tmp_path / "serve_stats.json").write_text(json.dumps(
            stats_payload(p99_s=0.050, slo_p99_ms=20.0)))
        report = build_report(tmp_path)
        assert report.models[0].slo_ok is False
        assert not report.ok()
        assert "BREACH" in render_serve_report(report)

    def test_slo_met(self, tmp_path):
        (tmp_path / "serve_stats.json").write_text(json.dumps(
            stats_payload(p99_s=0.010, slo_p99_ms=20.0)))
        report = build_report(tmp_path)
        assert report.models[0].slo_ok is True
        assert report.ok()

    def test_no_traffic_never_breaches(self):
        slo = ModelSLO(name="m", requests=0, p99_ms=999.0,
                       slo_p99_ms=1.0)
        assert slo.slo_ok is None

    def test_render_mentions_everything(self, tmp_path):
        (tmp_path / "serve_stats.json").write_text(json.dumps(
            stats_payload(slo_p99_ms=20.0)))
        text = render_serve_report(build_report(tmp_path))
        assert "uptime 60.0s" in text
        assert "drained cleanly" in text
        assert "64 admitted, 2 shed" in text
        assert " ok" in text
