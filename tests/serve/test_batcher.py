"""Dynamic batcher: bit-identity with serial inference, error isolation.

The acceptance property of the whole subsystem lives here: any
concurrent mix of single-image requests, coalesced into batches of any
size up to the arena capacity — including the odd tail of a drain — must
produce logits bit-identical to the serial ``repro infer`` path on the
same images.
"""

import threading

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.batcher import ModelRuntime
from repro.serve.queueing import RequestTimeout, ServeRequest
from repro.serve.registry import ModelRegistry


def make_runtime(path, metrics=None, **kwargs):
    registry = ModelRegistry()
    entry = registry.load("m", path)
    runtime = ModelRuntime(entry, metrics or MetricsRegistry(), **kwargs)
    runtime.start()
    return runtime


class TestBitIdentity:
    @pytest.mark.parametrize("n_images", [1, 3, 8, 11])
    def test_any_load_matches_serial(self, serve_artifact_path,
                                     serve_reference_program,
                                     serve_images, n_images):
        """Batches of every size 1..max_batch, odd tails included.

        11 images through a max_batch-4 runtime must split as 4+4+3 (or
        smaller under scheduling jitter) — every split is bit-identical.
        """
        runtime = make_runtime(serve_artifact_path, max_batch=4,
                               max_wait_s=0.002)
        x = serve_images[:n_images]
        requests = [ServeRequest("m", image, timeout_s=60.0)
                    for image in x]
        for request in requests:
            runtime.submit(request)
        served = np.stack([request.wait(60.0) for request in requests])
        runtime.stop()
        reference = serve_reference_program.run(x, batch_size=n_images)
        assert np.array_equal(served, reference)

    def test_concurrent_submitters_match_serial(self, serve_artifact_path,
                                                serve_reference_program,
                                                serve_images):
        """8 client threads racing into one queue: answers still exact."""
        runtime = make_runtime(serve_artifact_path, max_batch=8,
                               max_wait_s=0.005, queue_depth=64)
        n_clients, per_client = 8, 4
        x = serve_images[:n_clients * per_client]
        out = [None] * n_clients

        def client(index):
            lo = index * per_client
            requests = [runtime.submit(r) or r for r in
                        (ServeRequest("m", image, timeout_s=60.0)
                         for image in x[lo:lo + per_client])]
            out[index] = np.stack([r.wait(60.0) for r in requests])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        runtime.stop()
        served = np.concatenate(out)
        reference = serve_reference_program.run(x, batch_size=x.shape[0])
        assert np.array_equal(served, reference)

    def test_multiple_workers_match_serial(self, serve_artifact_path,
                                           serve_reference_program,
                                           serve_images):
        """Two workers = two private arenas over one shared program."""
        runtime = make_runtime(serve_artifact_path, max_batch=4,
                               max_wait_s=0.002, workers=2)
        requests = [ServeRequest("m", image, timeout_s=60.0)
                    for image in serve_images]
        for request in requests:
            runtime.submit(request)
        served = np.stack([request.wait(60.0) for request in requests])
        runtime.stop()
        reference = serve_reference_program.run(
            serve_images, batch_size=serve_images.shape[0])
        assert np.array_equal(served, reference)


class TestFailureIsolation:
    def test_expired_requests_fail_fast(self, serve_artifact_path,
                                        serve_images):
        metrics = MetricsRegistry()
        runtime = make_runtime(serve_artifact_path, metrics=metrics,
                               max_batch=4, max_wait_s=0.0)
        request = ServeRequest("m", serve_images[0], timeout_s=60.0)
        request.deadline = request.enqueued_at - 1.0   # already expired
        runtime.submit(request)
        with pytest.raises(RequestTimeout):
            request.wait(10.0)
        runtime.stop()
        snapshot = metrics.snapshot()
        assert snapshot["serve.m.timeouts"]["value"] == 1

    def test_executor_error_answers_batch_and_worker_survives(
            self, serve_artifact_path, serve_images):
        metrics = MetricsRegistry()
        runtime = make_runtime(serve_artifact_path, metrics=metrics,
                               max_batch=4, max_wait_s=0.0)
        worker = runtime.workers[0]
        original = worker.executor.run_batch_into
        calls = {"n": 0}

        def flaky(x, out):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("arena exploded")
            return original(x, out)

        worker.executor.run_batch_into = flaky
        doomed = ServeRequest("m", serve_images[0], timeout_s=60.0)
        runtime.submit(doomed)
        with pytest.raises(RuntimeError, match="arena exploded"):
            doomed.wait(10.0)
        # the worker thread must still be alive and serving
        healthy = ServeRequest("m", serve_images[1], timeout_s=60.0)
        runtime.submit(healthy)
        assert healthy.wait(10.0).shape == (10,)
        runtime.stop()
        assert metrics.snapshot()["serve.m.errors"]["value"] == 1

    def test_hard_stop_flushes_backlog(self, serve_artifact_path,
                                       serve_images):
        # workers never started: the backlog can only leave via flush
        registry = ModelRegistry()
        entry = registry.load("m", serve_artifact_path)
        runtime = ModelRuntime(entry, MetricsRegistry(), max_batch=4)
        stalled = [ServeRequest("m", image, timeout_s=60.0)
                   for image in serve_images[:3]]
        for request in stalled:
            runtime.submit(request)
        flushed = runtime.stop(drain=False, timeout_s=0.1)
        assert flushed == 3
        for request in stalled:
            with pytest.raises(Exception):
                request.wait(0.1)
