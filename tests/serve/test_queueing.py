"""Admission control unit tests: futures, bounded queues, batch takeout."""

import threading
import time

import numpy as np
import pytest

from repro.serve.queueing import (ModelDraining, ModelQueue, QueueFullError,
                                  RequestTimeout, ServeRequest)


def req(timeout_s=None):
    return ServeRequest("m", np.zeros((2, 2, 3), np.float32),
                        timeout_s=timeout_s)


class TestServeRequest:
    def test_result_round_trip(self):
        request = req()
        logits = np.arange(4.0, dtype=np.float32)
        request.set_result(logits)
        assert np.array_equal(request.wait(1.0), logits)
        assert request.latency_s >= 0.0

    def test_error_propagates_to_waiter(self):
        request = req()
        request.set_error(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            request.wait(1.0)

    def test_wait_times_out(self):
        with pytest.raises(RequestTimeout):
            req().wait(0.01)

    def test_expiry_follows_deadline(self):
        assert not req().expired()              # no deadline, never expires
        request = req(timeout_s=60.0)
        assert not request.expired()
        assert request.expired(now=request.deadline + 1.0)

    def test_wait_unblocks_cross_thread(self):
        request = req()
        threading.Timer(0.02, request.set_result,
                        args=(np.zeros(2, np.float32),)).start()
        assert request.wait(5.0).shape == (2,)


class TestModelQueue:
    def test_fifo_and_depth(self):
        queue = ModelQueue("m", maxsize=4)
        first, second = req(), req()
        queue.submit(first)
        queue.submit(second)
        assert queue.depth == 2
        batch = queue.take_batch(max_batch=2, max_wait_s=0.0)
        assert batch == [first, second]
        assert queue.depth == 0

    def test_full_queue_sheds(self):
        queue = ModelQueue("m", maxsize=1)
        queue.submit(req())
        with pytest.raises(QueueFullError):
            queue.submit(req())
        assert queue.depth == 1                # the shed one never entered

    def test_closed_queue_refuses(self):
        queue = ModelQueue("m")
        queue.close()
        with pytest.raises(ModelDraining):
            queue.submit(req())

    def test_take_batch_caps_at_max_batch(self):
        queue = ModelQueue("m", maxsize=8)
        for _ in range(5):
            queue.submit(req())
        assert len(queue.take_batch(max_batch=3, max_wait_s=0.0)) == 3
        assert len(queue.take_batch(max_batch=3, max_wait_s=0.0)) == 2

    def test_take_batch_waits_to_fill(self):
        queue = ModelQueue("m")
        queue.submit(req())
        late = req()
        threading.Timer(0.03, queue.submit, args=(late,)).start()
        batch = queue.take_batch(max_batch=2, max_wait_s=2.0)
        assert len(batch) == 2 and batch[1] is late

    def test_closed_queue_flushes_without_waiting(self):
        queue = ModelQueue("m")
        queue.submit(req())
        queue.close()
        start = time.monotonic()
        batch = queue.take_batch(max_batch=8, max_wait_s=10.0)
        assert len(batch) == 1
        assert time.monotonic() - start < 1.0   # did not sit out max_wait
        assert queue.take_batch(max_batch=8, max_wait_s=10.0) is None

    def test_close_wakes_blocked_worker(self):
        queue = ModelQueue("m")
        result = []
        worker = threading.Thread(
            target=lambda: result.append(queue.take_batch(4, 0.01)))
        worker.start()
        time.sleep(0.02)                        # let it block on empty
        queue.close()
        worker.join(5.0)
        assert result == [None]

    def test_flush_fails_backlog(self):
        queue = ModelQueue("m")
        requests = [req() for _ in range(3)]
        for request in requests:
            queue.submit(request)
        queue.close()
        assert queue.flush(ModelDraining("bye")) == 3
        for request in requests:
            with pytest.raises(ModelDraining):
                request.wait(0.1)

    def test_error_statuses(self):
        assert QueueFullError("x").status == 429
        assert ModelDraining("x").status == 503
        assert RequestTimeout("x").status == 504
