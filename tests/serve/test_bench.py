"""BENCH_serve schema + load generator + gate integration."""

import json

import pytest

from repro.obs.gate import gate_file
from repro.obs.schema import validate_bench, validate_bench_file
from repro.serve.bench import (BENCH_SCHEMA_VERSION, RECORD_FIELDS,
                               append_bench_record, measure_serving)


@pytest.fixture(scope="module")
def serve_record(serve_artifact_path):
    """One real (tiny) load-generator run, reused by every schema test."""
    return measure_serving(artifact_path=serve_artifact_path,
                           image_size=8, n_requests=24, n_clients=4,
                           max_batch=4, max_wait_ms=1.0)


class TestMeasure:
    def test_record_is_complete_and_valid(self, serve_record):
        for field in RECORD_FIELDS:
            assert field in serve_record, field
        assert validate_bench({"schema": BENCH_SCHEMA_VERSION,
                               "runs": [serve_record]},
                              "BENCH_serve.json") == []

    def test_measures_are_sane(self, serve_record):
        assert serve_record["n_requests"] == 24
        assert serve_record["seq_ips"] > 0
        assert serve_record["conc_ips"] > 0
        assert 1.0 <= serve_record["mean_batch"] <= 4.0
        assert serve_record["shed"] == 0
        assert serve_record["timeouts"] == 0
        assert isinstance(serve_record["host_limited"], bool)
        assert serve_record["host"]["cpus"] >= 1


class TestAppend:
    def test_append_creates_and_extends(self, serve_record, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        append_bench_record(path, serve_record)
        append_bench_record(path, serve_record)
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert len(payload["runs"]) == 2
        assert list(payload["runs"][0]) == list(RECORD_FIELDS)
        assert validate_bench_file(path) == []

    def test_validator_catches_missing_fields(self):
        problems = validate_bench(
            {"schema": BENCH_SCHEMA_VERSION, "runs": [{"dataset": "x"}]},
            "BENCH_serve.json")
        assert any("missing field 'conc_ips'" in p for p in problems)
        assert any("host must be an object" in p for p in problems)

    def test_validator_rejects_negative_counts(self, serve_record):
        bad = dict(serve_record, shed=-1, conc_s=-0.5)
        problems = validate_bench(
            {"schema": BENCH_SCHEMA_VERSION, "runs": [bad]},
            "BENCH_serve.json")
        assert any("shed" in p for p in problems)
        assert any("conc_s" in p for p in problems)


class TestGate:
    def test_gate_passes_on_stable_throughput(self, serve_record,
                                              tmp_path):
        path = tmp_path / "BENCH_serve.json"
        append_bench_record(path, serve_record)
        append_bench_record(path, serve_record)
        report = gate_file(path)
        metrics = {check.metric for check in report.checks}
        assert "conc_ips" in metrics
        assert not report.regressions

    def test_gate_catches_throughput_regression(self, serve_record,
                                                tmp_path):
        path = tmp_path / "BENCH_serve.json"
        append_bench_record(path, serve_record)
        slower = dict(serve_record,
                      conc_ips=serve_record["conc_ips"] * 0.5)
        append_bench_record(path, slower)
        report = gate_file(path)
        assert [check.metric for check in report.regressions] == \
            ["conc_ips"]

    def test_gate_skips_p99_on_limited_host(self, serve_record,
                                            tmp_path):
        limited = dict(serve_record, host_limited=True)
        path = tmp_path / "BENCH_serve.json"
        append_bench_record(path, limited)
        append_bench_record(path, dict(limited, p99_ms=99999.0))
        report = gate_file(path)
        assert "p99_ms" not in {check.metric for check in report.checks}
        assert any("host_limited" in note for note in report.notes)
