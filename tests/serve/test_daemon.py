"""Daemon end-to-end: HTTP protocol, admission statuses, graceful drain."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.schema import validate_path
from repro.serve import (ModelDraining, QueueFullError, ServeConfig,
                         ServeDaemon, UnknownModel)
from repro.serve.daemon import STATS_FILENAME

from .conftest import IMAGE_SIZE


@pytest.fixture
def daemon(serve_artifact_path, tmp_path):
    daemon = ServeDaemon(ServeConfig(
        port=0, max_batch=4, max_wait_ms=2.0, queue_depth=32,
        run_dir=str(tmp_path / "run")))
    daemon.load_model("m", serve_artifact_path)
    yield daemon
    daemon.shutdown(drain=True)


@pytest.fixture
def base_url(daemon):
    host, port = daemon.start()
    return f"http://{host}:{port}"


def get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHTTP:
    def test_healthz_and_models(self, base_url):
        status, health = get(base_url + "/healthz")
        assert status == 200 and health == {"status": "ok",
                                            "models": ["m"]}
        _, listing = get(base_url + "/v1/models")
        assert listing["models"][0]["name"] == "m"
        assert listing["models"][0]["input_shape"] == [IMAGE_SIZE,
                                                       IMAGE_SIZE, 3]

    def test_predict_single_and_batch(self, base_url, serve_images):
        one = serve_images[0].tolist()
        status, body = post(base_url + "/v1/models/m/predict",
                            {"inputs": one})
        assert status == 200 and body["batch"] == 1
        status, body = post(base_url + "/v1/models/m/predict",
                            {"inputs": serve_images[:5].tolist(),
                             "return_logits": True})
        assert status == 200 and body["batch"] == 5
        assert len(body["logits"]) == 5 and len(body["logits"][0]) == 10

    def test_predict_rejects_bad_inputs(self, base_url):
        status, body = post(base_url + "/v1/models/m/predict",
                            {"inputs": [[1, 2], [3]]})
        assert status == 400 and "numeric array" in body["error"]
        wrong = np.zeros((2, IMAGE_SIZE + 1, IMAGE_SIZE, 3)).tolist()
        status, body = post(base_url + "/v1/models/m/predict",
                            {"inputs": wrong})
        assert status == 400 and "expected images" in body["error"]

    def test_unknown_model_404(self, base_url, serve_images):
        status, _ = post(base_url + "/v1/models/ghost/predict",
                         {"inputs": serve_images[0].tolist()})
        assert status == 404

    def test_load_evict_over_http(self, base_url, serve_artifact_path,
                                  daemon):
        status, body = post(base_url + "/v1/models/second/load",
                            {"path": str(serve_artifact_path)})
        assert status == 200 and body["loaded"]["name"] == "second"
        assert "second" in daemon.model_names()
        request = urllib.request.Request(
            base_url + "/v1/models/second", method="DELETE")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
        assert "second" not in daemon.model_names()

    def test_stats_endpoint(self, base_url):
        status, stats = get(base_url + "/v1/stats")
        assert status == 200
        assert stats["schema"] == 1 and "serve.requests" in stats["metrics"]

    def test_eight_concurrent_clients(self, base_url, serve_images,
                                      serve_reference_program):
        """The acceptance bar: >= 8 concurrent clients, exact answers."""
        n_clients = 8
        outs = [None] * n_clients
        failures = []

        def client(index):
            image = serve_images[index]
            try:
                status, body = post(base_url + "/v1/models/m/predict",
                                    {"inputs": image.tolist(),
                                     "return_logits": True})
                assert status == 200, body
                outs[index] = np.asarray(body["logits"][0],
                                         dtype=np.float32)
            except Exception as exc:            # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        served = np.stack(outs)
        reference = serve_reference_program.run(
            serve_images[:n_clients], batch_size=n_clients)
        assert np.array_equal(served, reference)


class TestAdmission:
    def test_shed_when_queue_full(self, serve_artifact_path,
                                  serve_images):
        daemon = ServeDaemon(ServeConfig(max_batch=4, queue_depth=1))
        daemon.load_model("m", serve_artifact_path)
        runtime = daemon.runtime("m")
        # hold the queue lock so the worker cannot drain while we fill
        with runtime.queue._cond:
            runtime.queue._items.append(
                object())                       # depth == maxsize
            with pytest.raises(QueueFullError):
                daemon.submit("m", serve_images[0])
            runtime.queue._items.pop()
        snapshot = daemon.metrics.snapshot()
        assert snapshot["serve.shed"]["value"] == 1
        assert snapshot["serve.m.shed"]["value"] == 1
        daemon.shutdown(drain=False)

    def test_unknown_model_raises(self, serve_artifact_path):
        daemon = ServeDaemon(ServeConfig())
        with pytest.raises(UnknownModel):
            daemon.submit("ghost", np.zeros((2, 2, 3), np.float32))
        daemon.shutdown()


class TestDrain:
    def test_draining_refuses_new_work(self, serve_artifact_path,
                                       serve_images):
        daemon = ServeDaemon(ServeConfig(max_batch=4))
        daemon.load_model("m", serve_artifact_path)
        daemon.shutdown(drain=True)
        with pytest.raises(ModelDraining):
            daemon.submit("m", serve_images[0])

    def test_drain_answers_backlog_and_writes_stats(
            self, serve_artifact_path, serve_images, tmp_path):
        run_dir = tmp_path / "run"
        daemon = ServeDaemon(ServeConfig(
            port=0, max_batch=4, max_wait_ms=50.0,
            run_dir=str(run_dir)))
        daemon.start()
        daemon.load_model("m", serve_artifact_path)
        requests = [daemon.submit("m", image, timeout_s=60.0)
                    for image in serve_images[:6]]
        stats = daemon.shutdown(drain=True)
        # every admitted request was answered, none flushed
        for request in requests:
            assert request.wait(10.0).shape == (10,)
        assert stats["flushed_requests"] == 0
        assert stats["drained_cleanly"] is True
        assert daemon.wait(1.0)                  # stopped event set
        stats_file = run_dir / STATS_FILENAME
        assert stats_file.exists()
        assert validate_path(stats_file) == []
        assert json.loads(stats_file.read_text())["metrics"][
            "serve.m.requests"]["value"] == 6.0

    def test_second_shutdown_is_idempotent(self, serve_artifact_path):
        daemon = ServeDaemon(ServeConfig())
        daemon.load_model("m", serve_artifact_path)
        first = daemon.shutdown(drain=True)
        second = daemon.shutdown(drain=True)
        assert second["draining"] is True
        assert first["schema"] == second["schema"] == 1

    def test_load_refused_while_draining(self, serve_artifact_path):
        daemon = ServeDaemon(ServeConfig())
        daemon.shutdown(drain=True)
        from repro.serve.registry import RegistryError
        with pytest.raises(RegistryError, match="draining"):
            daemon.load_model("m", serve_artifact_path)
