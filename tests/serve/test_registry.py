"""Model registry + content-hash artifact cache behavior."""

import pytest

from repro.infer.artifact import ArtifactCache
from repro.serve.queueing import UnknownModel
from repro.serve.registry import ModelRegistry, RegistryError

from .conftest import IMAGE_SIZE


@pytest.fixture
def registry():
    # a private cache so hit/miss counters are this test's alone
    return ModelRegistry(cache=ArtifactCache(capacity=4))


class TestRegistry:
    def test_load_and_describe(self, registry, serve_artifact_path):
        entry = registry.load("cifar", serve_artifact_path)
        assert entry.input_shape == (IMAGE_SIZE, IMAGE_SIZE, 3)
        assert entry.num_classes == 10
        info = entry.describe()
        assert info["name"] == "cifar"
        assert info["stages"] == len(entry.program.stages)
        assert "cifar" in registry and len(registry) == 1

    def test_invalid_names_refused(self, registry, serve_artifact_path):
        for bad in ("", "a/b", "a b", "x" * 65, "dots.break.metrics"):
            with pytest.raises(RegistryError):
                registry.load(bad, serve_artifact_path)

    def test_missing_file_refused(self, registry, tmp_path):
        with pytest.raises(RegistryError, match="no such artifact"):
            registry.load("m", tmp_path / "nope.bomp")

    def test_unknown_model(self, registry):
        with pytest.raises(UnknownModel):
            registry.get("ghost")
        with pytest.raises(UnknownModel):
            registry.evict("ghost")

    def test_evict(self, registry, serve_artifact_path):
        registry.load("m", serve_artifact_path)
        registry.evict("m")
        assert "m" not in registry and registry.names() == []

    def test_reload_same_content_hits_cache(self, registry,
                                            serve_artifact_path):
        first = registry.load("a", serve_artifact_path)
        second = registry.load("b", serve_artifact_path)  # other name
        third = registry.load("a", serve_artifact_path)   # reload
        assert registry.cache.misses == 1
        assert registry.cache.hits == 2
        # the compiled program is the shared, immutable unit
        assert first.program is second.program is third.program

    def test_changed_file_recompiles(self, registry, serve_artifact_path,
                                     tmp_path):
        copy = tmp_path / "copy.bomp"
        copy.write_bytes(serve_artifact_path.read_bytes())
        old = registry.load("m", copy)
        # re-export: same path, different content (fresh calibration seed)
        from repro.serve.bench import make_bench_artifact
        make_bench_artifact(copy, image_size=IMAGE_SIZE, seed=8)
        new = registry.load("m", copy)
        assert new.digest != old.digest
        assert new.program is not old.program
        assert registry.get("m") is new
