"""Fixtures for the serving suite.

One small deterministic artifact (untrained, calibrated seed network at
8x8 — serving correctness is bit-identity against the serial engine, not
accuracy) is built once per session and shared by every test; daemons
are cheap to start against it because the compiled program comes out of
the content-hash artifact cache after the first load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer.artifact import load_artifact
from repro.serve.bench import make_bench_artifact

IMAGE_SIZE = 8


@pytest.fixture(scope="session")
def serve_artifact_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "model.bomp"
    make_bench_artifact(path, image_size=IMAGE_SIZE, seed=7)
    return path


@pytest.fixture(scope="session")
def serve_reference_program(serve_artifact_path):
    """A serial-path compile of the same artifact, for bit-identity."""
    return load_artifact(serve_artifact_path).compile(name="reference")


@pytest.fixture(scope="session")
def serve_images():
    rng = np.random.default_rng(23)
    return rng.normal(size=(32, IMAGE_SIZE, IMAGE_SIZE, 3)) \
        .astype(np.float32)
