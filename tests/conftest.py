"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_dataset
from repro.nas import SearchConfig, get_mode, get_scale
from repro.space import SearchSpace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def unit_scale():
    return get_scale("unit")


@pytest.fixture(scope="session")
def tiny_dataset(unit_scale):
    """A tiny 10-class dataset matching the unit scale preset."""
    return make_synthetic_dataset(
        "tiny-c10", num_classes=10, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=3)


@pytest.fixture(scope="session")
def tiny_dataset_100(unit_scale):
    """A tiny 100-class dataset for CIFAR-100-space tests."""
    return make_synthetic_dataset(
        "tiny-c100", num_classes=100, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=4)


@pytest.fixture(scope="session")
def c10_space() -> SearchSpace:
    return SearchSpace("cifar10")


@pytest.fixture(scope="session")
def c100_space() -> SearchSpace:
    return SearchSpace("cifar100")


@pytest.fixture
def unit_config(unit_scale) -> SearchConfig:
    return SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                        scale=unit_scale, seed=0)
