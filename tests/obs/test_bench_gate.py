"""The bench regression gate and the BENCH_parallel v2 migration."""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.gate import gate_file, run_gate
from repro.obs.host import compatible, fingerprint, host_metadata

REPO_ROOT = Path(__file__).resolve().parents[2]
GATE_SCRIPT = REPO_ROOT / "scripts" / "bench_gate.py"

HOST = {"platform": "linux", "python": "3.11", "numpy": "1.26",
        "cpus": 8, "cpu": "TestCPU 3000"}


def _infer_run(int_ips, host=HOST, **overrides):
    run = {"timestamp": "2026-08-08T00:00:00+00:00", "dataset": "cifar10",
           "bits": 8, "image_size": 16, "n_images": 256,
           "batch_size": 256, "stages": 10, "macs_per_image": 1000,
           "float_s": 1.0, "int_s": 256.0 / int_ips, "float_ips": 256.0,
           "int_ips": int_ips, "int_over_float": 0.2,
           "top1_agreement": 1.0, "arena_bytes": 1024,
           "allocs_per_image": 0.0, "host": copy.deepcopy(host)}
    run.update(overrides)
    return run


def _parallel_run(serial_s, speedup=1.8, host=HOST, host_limited=False,
                  **overrides):
    run = {"timestamp": "2026-08-08T00:00:00+00:00", "scale": "smoke",
           "dataset": "cifar10", "mode": "mp_qaft", "seed": 7,
           "trials": 14, "workers": 2, "batch_size": 4, "cpu_count": 8,
           "serial_s": serial_s,
           "parallel_s": serial_s / speedup if speedup else None,
           "speedup": speedup, "identical": True,
           "host": copy.deepcopy(host), "host_limited": host_limited}
    run.update(overrides)
    return run


def _write(tmp_path, name, runs, schema=2):
    path = tmp_path / name
    path.write_text(json.dumps({"schema": schema, "runs": runs}))
    return path


class TestHostFingerprint:
    def test_metadata_has_fingerprint_keys(self):
        host = host_metadata()
        for key in ("platform", "python", "numpy", "cpus", "cpu"):
            assert key in host

    def test_fingerprint_none_for_null_host(self):
        assert fingerprint(None) is None
        assert fingerprint("not a dict") is None

    def test_compatible_wildcards_missing_keys(self):
        old = {"platform": "linux", "python": "3.11", "numpy": "1.26",
               "cpus": 8}  # BENCH_infer v2 block, no "cpu" key
        assert compatible(old, HOST)
        assert not compatible({**old, "cpus": 1}, HOST)
        assert not compatible(None, HOST)


class TestGateInfer:
    def test_regression_detected(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(400.0)])  # -20%
        report = gate_file(path)
        assert len(report.checks) == 1
        assert report.checks[0].regressed

    def test_within_tolerance_passes(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(480.0)])  # -4%
        report = gate_file(path)
        assert not report.regressions

    def test_improvement_passes(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(700.0)])
        assert not gate_file(path).regressions

    def test_best_prior_not_latest_prior(self, tmp_path):
        # the baseline is the best prior run, so a slow run cannot
        # ratchet the bar down for its successors
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(300.0),
                       _infer_run(420.0)])
        report = gate_file(path)
        assert report.checks[0].baseline == 500.0
        assert report.checks[0].regressed

    def test_differing_host_skipped(self, tmp_path):
        other = dict(HOST, cpu="OtherCPU 9000")
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0, host=other), _infer_run(400.0)])
        report = gate_file(path)
        assert report.checks == []
        assert any("host fingerprint" in n for n in report.notes)

    def test_null_host_newest_skipped(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(400.0, host=None)])
        report = gate_file(path)
        assert report.checks == []

    def test_differing_workload_skipped(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0, bits=4), _infer_run(400.0)])
        assert gate_file(path).checks == []

    def test_single_run_vacuous(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json", [_infer_run(500.0)])
        report = gate_file(path)
        assert report.checks == [] and report.notes


class TestGateParallel:
    def test_serial_time_regression(self, tmp_path):
        path = _write(tmp_path, "BENCH_parallel.json",
                      [_parallel_run(100.0), _parallel_run(125.0)])
        report = gate_file(path)
        regressed = [c for c in report.regressions]
        assert any(c.metric == "serial_s" for c in regressed)

    def test_speedup_gated_on_multicore(self, tmp_path):
        path = _write(tmp_path, "BENCH_parallel.json",
                      [_parallel_run(100.0, speedup=1.8),
                       _parallel_run(100.0, speedup=1.2)])
        report = gate_file(path)
        assert any(c.metric == "speedup" and c.regressed
                   for c in report.checks)

    def test_host_limited_speedup_not_gated(self, tmp_path):
        path = _write(tmp_path, "BENCH_parallel.json",
                      [_parallel_run(100.0, speedup=1.8),
                       _parallel_run(100.0, speedup=0.5,
                                     host_limited=True)])
        report = gate_file(path)
        assert not any(c.metric == "speedup" for c in report.checks)
        # serial_s is still gated: wall-clock is meaningful on any host
        assert any(c.metric == "serial_s" for c in report.checks)


class TestGateScript:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(GATE_SCRIPT), *argv],
            capture_output=True, text=True)

    def test_committed_bench_files_pass(self):
        result = self._run()
        assert result.returncode == 0, result.stdout + result.stderr

    def test_synthetic_regression_fails(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(400.0)])
        result = self._run(str(path))
        assert result.returncode == 1
        assert "REGRESSED" in result.stdout

    def test_dry_run_always_zero(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(400.0)])
        result = self._run(str(path), "--dry-run")
        assert result.returncode == 0
        assert "REGRESSED" in result.stdout

    def test_tolerance_flag(self, tmp_path):
        path = _write(tmp_path, "BENCH_infer.json",
                      [_infer_run(500.0), _infer_run(480.0)])  # -4%
        assert self._run(str(path)).returncode == 0
        assert self._run(str(path),
                         "--tolerance", "0.01").returncode == 1


class TestParallelV2Migration:
    def test_append_migrates_v1_rows(self, tmp_path):
        from repro.parallel.bench import append_bench_record
        path = tmp_path / "BENCH_parallel.json"
        v1 = {"schema": 1,
              "runs": [{"timestamp": "t", "scale": "smoke",
                        "dataset": "cifar10", "mode": "mp_qaft",
                        "seed": 7, "trials": 14, "workers": 2,
                        "batch_size": 4, "cpu_count": 1,
                        "serial_s": 10.0, "parallel_s": 11.0,
                        "speedup": 0.91, "identical": True}]}
        path.write_text(json.dumps(v1))
        append_bench_record(path, _parallel_run(9.0))
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2
        migrated = payload["runs"][0]
        assert migrated["host"] is None
        assert migrated["host_limited"] is True  # cpu_count == 1
        fresh = payload["runs"][1]
        assert fresh["host_limited"] is False

    def test_migrated_file_validates(self, tmp_path):
        from repro.obs.schema import validate_bench_file
        from repro.parallel.bench import append_bench_record
        path = tmp_path / "BENCH_parallel.json"
        append_bench_record(path, _parallel_run(9.0))
        assert validate_bench_file(path) == []

    def test_committed_file_is_v2(self):
        payload = json.loads(
            (REPO_ROOT / "BENCH_parallel.json").read_text())
        assert payload["schema"] == 2
        for run in payload["runs"]:
            assert "host" in run and "host_limited" in run


class TestSchemaProfileEvents:
    def test_valid_profile_event(self):
        from repro.obs.schema import validate_events
        event = {"type": "profile", "scope": "kernel",
                 "name": "nn.conv2d.fwd", "phase": "train",
                 "mode": "time", "trial": 0, "calls": 3, "excl_s": 0.1,
                 "incl_s": 0.2, "allocs": None, "peak_bytes": None,
                 "net_bytes": None, "tags": {}}
        assert validate_events([event]) == []

    def test_bad_scope_and_counts_flagged(self):
        from repro.obs.schema import validate_events
        problems = validate_events([
            {"type": "profile", "scope": "bogus", "name": "k",
             "phase": "", "mode": "time", "trial": None, "calls": -1,
             "excl_s": -0.5, "incl_s": 0.0, "tags": {}}])
        assert any("scope" in p for p in problems)
        assert any("calls" in p for p in problems)
        assert any("excl_s" in p for p in problems)

    def test_unknown_type_still_flagged(self):
        from repro.obs.schema import validate_events
        assert validate_events([{"type": "bogus"}])
