"""Shared fixture: one traced unit-scale search reused by the obs tests."""

import pytest

from repro.data import make_synthetic_dataset
from repro.nas import BOMPNAS, SearchConfig, get_mode
from repro.obs.trace import RunTracer


@pytest.fixture(scope="session")
def traced_run(tmp_path_factory, unit_scale):
    """(run_dir, SearchResult) of a traced serial unit-scale search.

    ``batch_size=1`` makes the BO loop sequential, so the GP fits after
    ``n_initial_random`` real observations and the trace contains GP
    diagnostics (length scale, acquisition, residuals).
    """
    run_dir = tmp_path_factory.mktemp("obs") / "run"
    dataset = make_synthetic_dataset(
        "tiny-obs", num_classes=10, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=5)
    config = SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                          scale=unit_scale, seed=0)
    with RunTracer(run_dir) as tracer:
        result = BOMPNAS(config, dataset).run(
            final_training=False, workers=1, batch_size=1, tracer=tracer)
    return run_dir, result
