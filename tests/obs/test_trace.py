"""Tracing core: spans, recorders, ingest rebasing, JSONL round-trip."""

import io
import json

import pytest

from repro.obs.trace import (EVENTS_FILENAME, NULL_RECORDER, Recorder,
                             RunTracer, TraceRecorder, get_recorder,
                             read_events, set_recorder, span, use_recorder)


class TestNoOpRecorder:
    def test_default_recorder_is_noop(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_span_times_even_when_disabled(self):
        with NULL_RECORDER.span("work") as s:
            total = sum(range(1000))
        assert total == 499500
        assert s.duration > 0
        assert s.span_id is None  # no id assignment under the no-op

    def test_metrics_are_discarded(self):
        NULL_RECORDER.counter("c")
        NULL_RECORDER.gauge("g", 1.0)
        NULL_RECORDER.observe("h", 1.0)
        NULL_RECORDER.meta(x=1)
        NULL_RECORDER.ingest([{"type": "span"}])  # all no-ops, no state

    def test_elapsed_while_open(self):
        with NULL_RECORDER.span("work") as s:
            early = s.elapsed()
            sum(range(1000))
            late = s.elapsed()
        assert 0 <= early <= late <= s.duration


class TestTraceRecorder:
    def test_span_hierarchy_and_trial_inheritance(self):
        rec = TraceRecorder()
        with rec.span("run", kind="run"):
            with rec.span("trial", kind="trial", trial=7):
                with rec.span("train", kind="phase"):
                    pass
        events = [e for e in rec.events if e["type"] == "span"]
        by_name = {e["name"]: e for e in events}
        assert by_name["train"]["parent"] == by_name["trial"]["span"]
        assert by_name["trial"]["parent"] == by_name["run"]["span"]
        assert by_name["run"]["parent"] is None
        # phase inherits the trial index from its parent span
        assert by_name["train"]["trial"] == 7

    def test_metric_inherits_trial_from_open_span(self):
        rec = TraceRecorder()
        with rec.span("trial", kind="trial", trial=3):
            rec.gauge("score", 1.5)
        event = [e for e in rec.events if e["type"] == "gauge"][0]
        assert event["trial"] == 3
        assert rec.metrics.gauge("score").value == 1.5

    def test_ingest_rebases_span_ids(self):
        worker = TraceRecorder()
        with worker.span("trial", kind="trial", trial=0):
            with worker.span("train", kind="phase"):
                pass
        parent = TraceRecorder()
        with parent.span("run", kind="run") as run_span:
            parent.ingest(worker.events)
            with parent.span("late", kind="phase"):
                pass
        spans = {e["name"]: e for e in parent.events if e["type"] == "span"}
        # worker ids shifted past the parent's, orphan rooted at run span
        assert spans["trial"]["parent"] == run_span.span_id
        assert spans["train"]["parent"] == spans["trial"]["span"]
        ids = [e["span"] for e in parent.events if e["type"] == "span"]
        assert len(ids) == len(set(ids))  # no collisions after rebase

    def test_ingest_none_is_noop(self):
        rec = TraceRecorder()
        rec.ingest(None)
        rec.ingest([])
        assert rec.events == []

    def test_sink_streams_jsonl(self):
        sink = io.StringIO()
        rec = TraceRecorder(sink=sink)
        rec.gauge("x", 2.0)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["value"] == 2.0

    def test_meta_carries_schema_version(self):
        rec = TraceRecorder()
        rec.meta(run="demo")
        assert rec.events[0]["schema"] == 1
        assert rec.events[0]["run"] == "demo"


class TestCurrentRecorder:
    def test_use_recorder_scopes_and_restores(self):
        rec = TraceRecorder()
        with use_recorder(rec):
            assert get_recorder() is rec
            with span("work"):
                pass
        assert get_recorder() is NULL_RECORDER
        assert any(e["type"] == "span" for e in rec.events)

    def test_set_recorder_none_restores_noop(self):
        previous = set_recorder(TraceRecorder())
        assert previous is NULL_RECORDER
        set_recorder(None)
        assert get_recorder() is NULL_RECORDER


class TestRunTracer:
    def test_writes_event_log(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunTracer(run_dir) as tracer:
            with use_recorder(tracer.recorder):
                with span("run", kind="run"):
                    get_recorder().gauge("x", 1.0)
        assert (run_dir / EVENTS_FILENAME).exists()
        events = read_events(run_dir)
        assert {e["type"] for e in events} == {"span", "gauge"}

    def test_close_is_idempotent(self, tmp_path):
        tracer = RunTracer(tmp_path / "run")
        tracer.close()
        tracer.close()
