"""The search-health report over a real traced run."""

import pytest

from repro.obs.report import (RunReport, calibration_svg, load_report,
                              render_text, trajectory_svg, write_report)
from repro.obs.trace import read_events


@pytest.fixture(scope="module")
def report(traced_run):
    run_dir, _ = traced_run
    return load_report(run_dir)


class TestLoadReport:
    def test_meta_and_run_span(self, report):
        assert "mp_qaft" in report.meta.get("run", "")
        assert report.run_span is not None
        assert report.run_span["dur_s"] > 0

    def test_trial_scores_match_results(self, report, traced_run):
        _, result = traced_run
        scores = {trial: score for trial, score, _ in report.trial_scores}
        assert scores == {t.index: t.score for t in result.trials}

    def test_phase_totals_cover_pipeline(self, report):
        assert {"train", "ptq", "qaft", "eval"} <= set(report.phase_totals)
        assert all(v >= 0 for v in report.phase_totals.values())

    def test_gp_diagnostics_recorded(self, report):
        # batch_size=1 + n_initial_random=2 guarantee at least one GP fit
        assert report.gp_fits
        assert report.acquisitions
        assert report.residuals

    def test_epoch_telemetry_recorded(self, report):
        assert report.epochs
        assert all("loss" in e["tags"] for e in report.epochs)

    def test_qaft_recovery_recorded(self, report):
        assert report.qaft_recovery
        for event in report.qaft_recovery:
            tags = event["tags"]
            assert event["value"] == pytest.approx(
                tags["accuracy"] - tags["ptq_accuracy"])


class TestDerivedViews:
    def test_incumbent_trajectory_monotonic(self, report):
        trajectory = report.incumbent_trajectory()
        bests = [b for _, b in trajectory]
        assert bests == sorted(bests)
        assert len(trajectory) == len(report.trial_scores)

    def test_calibration_points_and_summary(self, report):
        points = report.calibration_points()
        assert points
        summary = report.calibration_summary()
        assert summary["n"] == len(points)
        assert summary["mean_abs_residual"] >= 0

    def test_empty_report_views(self):
        empty = RunReport(source="x", events=[])
        assert empty.incumbent_trajectory() == []
        assert empty.calibration_summary() == {}


class TestRendering:
    def test_text_dashboard_sections(self, report):
        text = render_text(report)
        for section in ("incumbent trajectory", "phase-time breakdown",
                        "training dynamics", "GP surrogate",
                        "QAFT recovery", "process pool"):
            assert section in text

    def test_svgs_are_valid_xml(self, report):
        import xml.etree.ElementTree as ET
        for markup in (trajectory_svg(report), calibration_svg(report)):
            assert markup is not None
            assert ET.fromstring(markup).tag.endswith("svg")

    def test_empty_report_svgs_are_none(self):
        empty = RunReport(source="x", events=[])
        assert trajectory_svg(empty) is None
        assert calibration_svg(empty) is None

    def test_write_report_writes_svgs(self, traced_run, tmp_path):
        run_dir, _ = traced_run
        svg = tmp_path / "dash.svg"
        report, text = write_report(run_dir, svg_out=svg)
        assert "BOMP-NAS run health" in text
        assert svg.exists()
        assert (tmp_path / "dash-calibration.svg").exists()
        assert len(report.events) == len(read_events(run_dir))
