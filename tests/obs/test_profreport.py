"""Profile reporting: merged hotspot view, flame SVG, tolerant loading."""

import json

import pytest

from repro.obs.profreport import (aggregate, flame_svg, hotspot_lines,
                                  load_profile, render_hotspots)
from repro.obs.trace import EVENTS_FILENAME


def _span(kind, name, span_id, parent=None, trial=None, dur=1.0):
    return {"type": "span", "kind": kind, "name": name, "span": span_id,
            "parent": parent, "trial": trial, "t_wall": 0.0, "dur_s": dur,
            "tags": {}}


def _profile(scope, name, phase="", trial=None, calls=1, excl=0.5,
             incl=0.5, mode="time", allocs=None):
    return {"type": "profile", "scope": scope, "name": name,
            "phase": phase, "mode": mode, "trial": trial, "calls": calls,
            "excl_s": excl, "incl_s": incl, "allocs": allocs,
            "peak_bytes": None, "net_bytes": None, "tags": {}}


@pytest.fixture
def synthetic_events():
    """Two trials' worth of spans + profile events, as after ingest."""
    events = [
        {"type": "meta", "schema": 1},
        _span("run", "search", 1, dur=4.0),
    ]
    sid = 2
    for trial in (0, 1):
        events.append(_span("trial", f"trial-{trial}", sid, parent=1,
                            trial=trial, dur=2.0))
        parent = sid
        sid += 1
        for phase, dur in (("train", 1.2), ("eval", 0.8)):
            events.append(_span("phase", phase, sid, parent=parent,
                                trial=trial, dur=dur))
            sid += 1
            events.append(_profile("phase", phase, trial=trial,
                                   calls=1, excl=dur, incl=dur))
            events.append(_profile("kernel", "nn.conv2d.fwd", phase=phase,
                                   trial=trial, calls=10, excl=dur * 0.5,
                                   incl=dur * 0.6))
    return events


class TestAggregate:
    def test_merges_across_trials(self, synthetic_events):
        view = aggregate(synthetic_events)
        assert view.mode == "time"
        assert view.phases["train"]["calls"] == 2
        assert view.phases["train"]["excl_s"] == pytest.approx(2.4)
        stat = view.kernels[("train", "nn.conv2d.fwd")]
        assert stat["calls"] == 20
        assert stat["excl_s"] == pytest.approx(1.2)

    def test_span_walls_collected(self, synthetic_events):
        view = aggregate(synthetic_events)
        assert view.span_phase_s["train"] == pytest.approx(2.4)
        assert view.run_span["dur_s"] == 4.0
        assert len(view.trial_spans) == 2
        assert view.trial_phase_s[(0, "eval")] == pytest.approx(0.8)

    def test_empty_events(self):
        view = aggregate([])
        assert not view.has_profile
        assert view.run_span is None


class TestRenderHotspots:
    def test_table_contents(self, synthetic_events):
        text = render_hotspots(aggregate(synthetic_events))
        assert "phase breakdown" in text
        assert "nn.conv2d.fwd" in text
        assert "delta 0.0%" in text  # profiler wall == span wall here
        assert "kernel coverage 50%" in text

    def test_no_profile_message(self):
        text = render_hotspots(aggregate([_span("run", "search", 1)]))
        assert "no profile events" in text
        assert "--profile" in text

    def test_top_n_truncates(self, synthetic_events):
        text = render_hotspots(aggregate(synthetic_events), top_n=1)
        assert "1 more kernels" in text

    def test_hotspot_lines_match_render(self, synthetic_events):
        lines = hotspot_lines(synthetic_events)
        assert lines == render_hotspots(aggregate(synthetic_events)
                                        ).splitlines()


class TestFlameSvg:
    def test_structure(self, synthetic_events):
        svg = flame_svg(synthetic_events)
        assert svg is not None and svg.startswith("<svg")
        assert "trial 0" in svg and "trial 1" in svg
        assert "train" in svg and "eval" in svg
        assert "fwd" in svg  # kernel cells labelled by leaf name
        assert "unattributed" in svg  # phase time not covered by kernels

    def test_no_spans_returns_none(self):
        assert flame_svg([]) is None
        assert flame_svg([_profile("kernel", "k")]) is None

    def test_escapes_markup(self):
        events = [_span("run", 'se<arch>"x"', 1, dur=1.0)]
        svg = flame_svg(events)
        assert "<arch>" not in svg
        assert "&lt;arch&gt;" in svg


class TestLoadProfile:
    def test_round_trip_through_file(self, tmp_path, synthetic_events):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with open(run_dir / EVENTS_FILENAME, "w") as handle:
            for event in synthetic_events:
                handle.write(json.dumps(event) + "\n")
        view = load_profile(run_dir)
        assert view.warnings == []
        assert view.has_profile
        assert view.phases["train"]["excl_s"] == pytest.approx(2.4)

    def test_missing_log_warns_not_raises(self, tmp_path):
        view = load_profile(tmp_path)
        assert not view.has_profile
        assert any("no event log" in w for w in view.warnings)

    def test_torn_tail_dropped_with_warning(self, tmp_path,
                                            synthetic_events):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with open(run_dir / EVENTS_FILENAME, "w") as handle:
            for event in synthetic_events:
                handle.write(json.dumps(event) + "\n")
            handle.write('{"type": "profile", "scope": "ker')  # torn
        view = load_profile(run_dir)
        assert view.has_profile  # the parseable prefix survived
        assert any("torn tail" in w for w in view.warnings)

    def test_empty_log_warns(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / EVENTS_FILENAME).touch()
        view = load_profile(run_dir)
        assert any("empty" in w for w in view.warnings)


class TestReportIntegration:
    def test_report_crash_proof_on_torn_log(self, tmp_path,
                                            synthetic_events):
        from repro.obs.report import load_report, render_text
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with open(run_dir / EVENTS_FILENAME, "w") as handle:
            for event in synthetic_events:
                handle.write(json.dumps(event) + "\n")
            handle.write('{"truncated')
        report = load_report(run_dir)
        assert report.warnings
        text = render_text(report)
        assert "WARNING" in text
        assert "profiler hotspots:" in text  # profile section still folded in

    def test_report_missing_log_renders_warning(self, tmp_path):
        from repro.obs.report import load_report, render_text
        report = load_report(tmp_path)
        assert report.events == []
        assert "WARNING" in render_text(report)


class TestProfileCli:
    def test_prints_table_and_writes_svg(self, tmp_path, capsys,
                                         synthetic_events):
        from repro.cli import main
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with open(run_dir / EVENTS_FILENAME, "w") as handle:
            for event in synthetic_events:
                handle.write(json.dumps(event) + "\n")
        assert main(["profile", str(run_dir), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "nn.conv2d.fwd" in out
        assert (run_dir / "flame.svg").exists()

    def test_svg_out_none_skips_svg(self, tmp_path, capsys,
                                    synthetic_events):
        from repro.cli import main
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with open(run_dir / EVENTS_FILENAME, "w") as handle:
            for event in synthetic_events:
                handle.write(json.dumps(event) + "\n")
        assert main(["profile", str(run_dir), "--svg-out", "none"]) == 0
        assert not (run_dir / "flame.svg").exists()

    def test_unprofiled_run_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["profile", str(tmp_path)]) == 1
        assert "no profile events" in capsys.readouterr().out
