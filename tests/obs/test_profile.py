"""The kernel/phase profiler: attribution, determinism, and overhead.

The profiler's core contract mirrors the tracer's: enabling it must
never change a search result (it reads clocks, never RNGs), and the
default path must stay pay-for-what-you-use (a no-op timer when no
profiler is active).
"""

import time

import numpy as np
import pytest

from repro.nas import BOMPNAS
from repro.obs import profile
from repro.obs.profile import (KernelProfiler, kernel, mode_from_env,
                               use_profiler)
from repro.obs.trace import TraceRecorder


@pytest.fixture(scope="module")
def serial_run(unit_scale):
    from repro.data import make_synthetic_dataset
    from repro.nas import SearchConfig, get_mode
    dataset = make_synthetic_dataset(
        "tiny-prof", num_classes=10, n_train=unit_scale.n_train,
        n_test=unit_scale.n_test, image_size=unit_scale.image_size, seed=3)
    config = SearchConfig(dataset="cifar10", mode=get_mode("mp_qaft"),
                          scale=unit_scale, seed=0)
    serial = BOMPNAS(config, dataset).run(final_training=False, workers=1)
    return config, dataset, serial


class TestModeFromEnv:
    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no"])
    def test_disabled_values(self, value):
        assert mode_from_env({"BOMP_PROFILE": value}) is None

    def test_unset(self):
        assert mode_from_env({}) is None

    @pytest.mark.parametrize("value", ["1", "time", "on", "yes"])
    def test_time_values(self, value):
        assert mode_from_env({"BOMP_PROFILE": value}) == "time"

    @pytest.mark.parametrize("value", ["alloc", "allocs", "mem", "memory"])
    def test_alloc_values(self, value):
        assert mode_from_env({"BOMP_PROFILE": value}) == "alloc"


class TestKernelTimer:
    def test_null_timer_when_inactive(self):
        assert profile.current() is None
        timer = kernel("nn.whatever")
        assert timer is profile._NULL_TIMER
        with timer:
            pass  # must be a harmless no-op

    def test_counts_and_times(self):
        profiler = KernelProfiler()
        with use_profiler(profiler):
            for _ in range(3):
                with kernel("k"):
                    pass
        stat = profiler.kernels[("", "k")]
        assert stat.calls == 3
        assert stat.incl_s >= 0.0
        assert stat.excl_s <= stat.incl_s + 1e-9

    def test_nesting_splits_exclusive_time(self):
        profiler = KernelProfiler()
        with use_profiler(profiler):
            with kernel("outer"):
                time.sleep(0.01)
                with kernel("inner"):
                    time.sleep(0.02)
        outer = profiler.kernels[("", "outer")]
        inner = profiler.kernels[("", "inner")]
        # outer's exclusive time excludes the inner sleep
        assert outer.incl_s >= outer.excl_s + inner.incl_s - 1e-3
        assert inner.incl_s >= 0.02 - 1e-3
        assert outer.excl_s < outer.incl_s

    def test_phase_attribution_via_spans(self):
        profiler = KernelProfiler()
        recorder = TraceRecorder()
        from repro.obs.trace import use_recorder
        with use_recorder(recorder), use_profiler(profiler):
            with recorder.span("train", kind="phase"):
                with kernel("k"):
                    pass
            with recorder.span("eval", kind="phase"):
                with kernel("k"):
                    pass
        assert ("train", "k") in profiler.kernels
        assert ("eval", "k") in profiler.kernels
        assert set(profiler.phases) == {"train", "eval"}

    def test_flush_emits_valid_events_and_resets(self):
        from repro.obs.schema import validate_events
        profiler = KernelProfiler()
        recorder = TraceRecorder()
        with use_profiler(profiler):
            with kernel("k"):
                pass
        count = profiler.flush_to(recorder, trial=7)
        assert count == 1
        [event] = [e for e in recorder.events if e["type"] == "profile"]
        assert event["scope"] == "kernel"
        assert event["trial"] == 7
        assert event["mode"] == "time"
        assert validate_events([event]) == []
        assert profiler.kernels == {}  # flushed stats are gone

    def test_restores_previous_profiler(self):
        outer_profiler = KernelProfiler()
        inner_profiler = KernelProfiler()
        with use_profiler(outer_profiler):
            with use_profiler(inner_profiler):
                assert profile.current() is inner_profiler
            assert profile.current() is outer_profiler
        assert profile.current() is None


class TestAllocMode:
    def test_counts_ndarray_allocations(self):
        profiler = KernelProfiler("alloc")
        with use_profiler(profiler):
            with kernel("k"):
                np.zeros(16)
                np.empty(16)
        stat = profiler.kernels[("", "k")]
        assert stat.allocs >= 2

    def test_constructors_restored_after(self):
        unwrapped = np.zeros
        profiler = KernelProfiler("alloc")
        with use_profiler(profiler):
            assert np.zeros is not unwrapped
        assert np.zeros is unwrapped

    def test_phase_peak_bytes_tracked(self):
        profiler = KernelProfiler("alloc")
        recorder = TraceRecorder()
        from repro.obs.trace import use_recorder
        with use_recorder(recorder), use_profiler(profiler):
            with recorder.span("train", kind="phase"):
                buf = np.zeros(1 << 16)  # 512 KiB
                del buf
        stat = profiler.phases["train"]
        assert stat.peak_bytes >= (1 << 16) * 8

    def test_nested_alloc_profilers_compose(self):
        outer_profiler = KernelProfiler("alloc")
        inner_profiler = KernelProfiler("alloc")
        unwrapped = np.zeros
        with use_profiler(outer_profiler):
            with use_profiler(inner_profiler):
                with kernel("k"):
                    np.zeros(8)
            # outer is active again and still counting
            with kernel("k2"):
                np.zeros(8)
        assert np.zeros is unwrapped
        assert inner_profiler.kernels[("", "k")].allocs >= 1
        assert outer_profiler.kernels[("", "k2")].allocs >= 1


class TestProfileInvariance:
    """--profile must never change results (same contract as --trace)."""

    def test_profiled_serial_identical(self, serial_run, tmp_path,
                                       monkeypatch):
        from repro.obs.trace import RunTracer, read_events
        config, dataset, serial = serial_run
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        with RunTracer(tmp_path / "run") as tracer:
            profiled = BOMPNAS(config, dataset).run(
                final_training=False, workers=1, tracer=tracer)
        assert [t.genome for t in profiled.trials] == \
            [t.genome for t in serial.trials]
        assert [t.score for t in profiled.trials] == \
            [t.score for t in serial.trials]
        assert [t.accuracy for t in profiled.trials] == \
            [t.accuracy for t in serial.trials]
        assert [t.size_bits for t in profiled.trials] == \
            [t.size_bits for t in serial.trials]
        events = read_events(tmp_path / "run")
        prof_events = [e for e in events if e["type"] == "profile"]
        assert prof_events, "profiled run emitted no profile events"
        assert {e["phase"] for e in prof_events
                if e["scope"] == "kernel"} >= {"train", "ptq", "qaft",
                                               "eval"}

    def test_profiled_parallel_identical(self, serial_run, tmp_path,
                                         monkeypatch):
        from repro.obs.schema import validate_events
        from repro.obs.trace import RunTracer, read_events
        config, dataset, serial = serial_run
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        with RunTracer(tmp_path / "run2") as tracer:
            profiled = BOMPNAS(config, dataset).run(
                final_training=False, workers=2, tracer=tracer)
        assert [t.score for t in profiled.trials] == \
            [t.score for t in serial.trials]
        assert [t.accuracy for t in profiled.trials] == \
            [t.accuracy for t in serial.trials]
        events = read_events(tmp_path / "run2")
        assert validate_events(events) == []
        # every trial's kernels were shipped back and attributed
        kernel_trials = {e["trial"] for e in events
                        if e["type"] == "profile"
                        and e["scope"] == "kernel"}
        assert kernel_trials >= {t.index for t in serial.trials}

    def test_phase_walls_match_span_durations(self, serial_run, tmp_path,
                                              monkeypatch):
        """Acceptance: per-phase exclusive sums within 5% of span wall."""
        from repro.obs.profreport import load_profile
        from repro.obs.trace import RunTracer
        config, dataset, _ = serial_run
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        with RunTracer(tmp_path / "run3") as tracer:
            BOMPNAS(config, dataset).run(final_training=False, workers=1,
                                         tracer=tracer)
        view = load_profile(tmp_path / "run3")
        prof_total = sum(s["excl_s"] for s in view.phases.values())
        span_total = sum(view.span_phase_s.get(name, 0.0)
                         for name in view.phases)
        assert span_total > 0
        assert abs(prof_total - span_total) / span_total < 0.05

    def test_alloc_mode_identical(self, serial_run, tmp_path, monkeypatch):
        from repro.obs.trace import RunTracer, read_events
        config, dataset, serial = serial_run
        monkeypatch.setenv(profile.PROFILE_ENV, "alloc")
        with RunTracer(tmp_path / "run4") as tracer:
            profiled = BOMPNAS(config, dataset).run(
                final_training=False, workers=1, tracer=tracer)
        assert [t.score for t in profiled.trials] == \
            [t.score for t in serial.trials]
        events = read_events(tmp_path / "run4")
        kernels = [e for e in events if e["type"] == "profile"
                   and e["scope"] == "kernel"]
        assert any(e["allocs"] for e in kernels), \
            "alloc mode counted no ndarray allocations"

    def test_untraced_run_emits_nothing(self, serial_run, monkeypatch):
        # BOMP_PROFILE without --trace must not activate a profiler
        config, dataset, serial = serial_run
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        plain = BOMPNAS(config, dataset).run(final_training=False,
                                             workers=1)
        assert [t.score for t in plain.trials] == \
            [t.score for t in serial.trials]
        assert profile.current() is None


@pytest.mark.bench
class TestOverhead:
    def test_time_mode_overhead_under_3_percent(self, serial_run,
                                                tmp_path, monkeypatch):
        """Acceptance: profiling overhead < 3% on the search hot path.

        ``--profile`` implies ``--trace``, so the honest baseline is a
        *traced* run and the overhead is the profiler's own cost (kernel
        timers + phase hooks + flush).  Each variant is timed twice back
        to back on a warm cache and the better time wins, which filters
        scheduler noise.
        """
        from repro.obs.trace import RunTracer
        config, dataset, _ = serial_run
        runs = iter(range(100))

        def timed(profiled):
            if profiled:
                monkeypatch.setenv(profile.PROFILE_ENV, "1")
            else:
                monkeypatch.delenv(profile.PROFILE_ENV, raising=False)
            start = time.perf_counter()
            with RunTracer(tmp_path / f"run{next(runs)}") as tracer:
                BOMPNAS(config, dataset).run(final_training=False,
                                             workers=1, tracer=tracer)
            return time.perf_counter() - start

        timed(False)  # warmup
        traced = min(timed(False), timed(False))
        profiled = min(timed(True), timed(True))
        overhead = profiled / traced - 1.0
        assert overhead < 0.03, \
            f"profiling overhead {overhead:.1%} >= 3%"
