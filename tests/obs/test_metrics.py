"""Metrics instruments and the registry's event-stream rebuild."""

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_tracks_last_and_aggregates(self):
        g = Gauge("g")
        for v in (3.0, 1.0, 2.0):
            g.set(v)
        assert g.value == 2.0
        assert g.vmin == 1.0 and g.vmax == 3.0
        assert g.mean == pytest.approx(2.0)

    def test_empty_snapshot(self):
        snap = Gauge("g").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestHistogram:
    def test_percentiles_bounded_by_buckets(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.percentile(0.0) <= h.percentile(0.5) <= h.percentile(1.0)
        assert h.percentile(0.5) == 2.0  # bucket upper bound
        assert h.percentile(1.0) == 4.0

    def test_overflow_bucket_returns_exact_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(123.0)
        assert h.percentile(0.99) == 123.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(0.5) == 0.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_empty_snapshot_percentiles(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p50"] == snap["p90"] == snap["p99"] == 0.0

    def test_single_sample_percentiles_agree(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        # one sample: every quantile lands in its bucket's upper bound
        assert h.percentile(0.01) == 2.0
        assert h.percentile(0.5) == 2.0
        assert h.percentile(1.0) == 2.0
        assert h.vmin == h.vmax == 1.5

    def test_value_below_first_bucket_counts_in_it(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(-5.0)
        assert h.counts[0] == 1
        assert h.vmin == -5.0
        assert h.percentile(0.5) == 1.0  # first bucket's upper bound

    def test_values_beyond_last_bucket_overflow(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        for v in (10.0, 1000.0):
            h.observe(v)
        assert h.counts[-1] == 2
        # the overflow bucket has no upper bound -> exact max
        assert h.percentile(0.5) == 1000.0
        assert h.snapshot()["p99"] == 1000.0

    def test_exact_bucket_bound_is_inclusive(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.counts[0] == 1 and h.counts[1] == 0


class TestMetricsRegistry:
    def test_get_or_create_and_type_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_rebuild_from_events_matches_live(self):
        events = [
            {"type": "counter", "name": "n", "value": 2,
             "trial": None, "tags": {}},
            {"type": "gauge", "name": "g", "value": 1.5,
             "trial": 0, "tags": {}},
            {"type": "hist", "name": "h", "value": 0.2,
             "trial": 0, "tags": {}},
            {"type": "span", "kind": "phase", "name": "train", "span": 1,
             "parent": None, "trial": 0, "t_wall": 0.0, "dur_s": 0.1,
             "tags": {}},  # ignored by the registry
            {"type": "meta", "schema": 1},  # ignored too
        ]
        reg = MetricsRegistry.from_events(events)
        assert reg.names() == ["g", "h", "n"]
        assert reg.counter("n").value == 2
        assert reg.gauge("g").value == 1.5
        assert reg.histogram("h").count == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        snap = reg.snapshot()
        assert snap["g"]["type"] == "gauge"
        assert snap["g"]["value"] == 1.0


class TestThreadSafety:
    """Concurrent hammer: totals must be exact, not merely close.

    Unsynchronized ``+=`` under free-threading (or an ill-timed GIL
    switch) loses increments; the registry's single module lock makes
    every mutation atomic.  The assertions are exact equalities — a
    single lost update fails the test.
    """

    N_THREADS = 8
    N_OPS = 2_000

    def _hammer(self, fn):
        import threading
        errors = []

        def worker():
            try:
                for _ in range(self.N_OPS):
                    fn()
            except Exception as exc:            # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_counter_exact_under_contention(self):
        counter = Counter("c")
        self._hammer(lambda: counter.inc())
        assert counter.value == self.N_THREADS * self.N_OPS

    def test_histogram_exact_under_contention(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        self._hammer(lambda: histogram.observe(1.5))
        total = self.N_THREADS * self.N_OPS
        assert histogram.count == total
        assert histogram.counts[1] == total
        assert histogram.total == pytest.approx(1.5 * total)

    def test_gauge_aggregates_every_set(self):
        gauge = Gauge("g")
        self._hammer(lambda: gauge.set(2.0))
        assert gauge.count == self.N_THREADS * self.N_OPS
        assert gauge.value == 2.0

    def test_registry_get_or_create_races_to_one_instance(self):
        import threading
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker():
            barrier.wait()                      # maximize the race window
            for index in range(200):
                seen.append(registry.counter(f"metric.{index % 10}"))

        threads = [threading.Thread(target=worker)
                   for _ in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        by_name = {}
        for counter in seen:
            by_name.setdefault(counter.name, set()).add(id(counter))
        assert len(by_name) == 10
        for name, instances in by_name.items():
            assert len(instances) == 1, name
        assert len(registry.names()) == 10
