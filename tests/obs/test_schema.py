"""Schema validation for event logs and BENCH files (tier-1 guard).

Also runs ``scripts/check_schema.py`` against the repo's committed
``BENCH_*.json`` files, so a malformed bench record fails the suite.
"""

import json
from pathlib import Path

import pytest

from repro.obs.schema import (validate_bench, validate_events,
                              validate_events_file, validate_path)
from repro.obs.trace import read_events

REPO_ROOT = Path(__file__).resolve().parents[2]


def _span(span_id, parent=None, kind="phase", name="train", dur=0.1):
    return {"type": "span", "kind": kind, "name": name, "span": span_id,
            "parent": parent, "trial": 0, "t_wall": 0.0, "dur_s": dur,
            "tags": {}}


class TestEventValidation:
    def test_valid_stream(self):
        events = [
            {"type": "meta", "schema": 1, "run": "demo"},
            _span(1, kind="run", name="run"),
            _span(2, parent=1),
            {"type": "gauge", "name": "x", "value": 1.0, "trial": 0,
             "tags": {}},
        ]
        assert validate_events(events) == []

    def test_unknown_type_flagged(self):
        assert validate_events([{"type": "bogus"}])

    def test_missing_span_field_flagged(self):
        bad = _span(1)
        del bad["dur_s"]
        assert any("dur_s" in p for p in validate_events([bad]))

    def test_duplicate_span_id_flagged(self):
        assert any("duplicate" in p
                   for p in validate_events([_span(1), _span(1)]))

    def test_dangling_parent_flagged(self):
        assert any("references no span" in p
                   for p in validate_events([_span(2, parent=99)]))

    def test_parent_closing_after_child_is_valid(self):
        # children are emitted before their parents (exit order)
        assert validate_events([_span(2, parent=1), _span(1)]) == []

    def test_negative_duration_flagged(self):
        assert any("dur_s" in p
                   for p in validate_events([_span(1, dur=-1.0)]))

    def test_wrong_meta_schema_flagged(self):
        assert validate_events([{"type": "meta", "schema": 99}])

    def test_non_numeric_metric_flagged(self):
        bad = {"type": "gauge", "name": "x", "value": "high", "trial": 0,
               "tags": {}}
        assert any("number" in p for p in validate_events([bad]))


class TestTracedRunValidates:
    def test_real_event_log_is_schema_clean(self, traced_run):
        run_dir, _ = traced_run
        assert validate_events_file(run_dir) == []
        assert validate_events(read_events(run_dir)) == []


class TestBenchValidation:
    def test_committed_bench_files_validate(self):
        bench_files = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert bench_files, "expected committed BENCH_*.json files"
        for path in bench_files:
            assert validate_path(path) == [], f"{path} failed validation"

    def test_bad_bench_payload_flagged(self):
        assert validate_bench({"schema": 99, "runs": [{}]})
        assert validate_bench({"schema": 1, "runs": "nope"})

    def test_check_schema_script_passes(self):
        import subprocess, sys
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts/check_schema.py")],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_check_schema_script_fails_on_bad_file(self, tmp_path):
        import subprocess, sys
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": 99, "runs": []}))
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts/check_schema.py"),
             str(bad)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout
