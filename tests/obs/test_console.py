"""Console reporter: quiet gating and the historical trial format."""

import io

from repro.obs.console import ConsoleReporter


class FakeTrial:
    index = 3
    accuracy = 0.512
    size_kb = 43.25
    score = 1.234


class TestConsoleReporter:
    def test_info_suppressed_by_quiet(self):
        stream = io.StringIO()
        reporter = ConsoleReporter(quiet=True, stream=stream)
        reporter.info("progress")
        reporter.emit("result")
        assert stream.getvalue() == "result\n"

    def test_info_printed_by_default(self):
        stream = io.StringIO()
        ConsoleReporter(stream=stream).info("progress")
        assert stream.getvalue() == "progress\n"

    def test_trial_line_matches_historical_format(self):
        stream = io.StringIO()
        ConsoleReporter(stream=stream).trial(FakeTrial())
        assert stream.getvalue() == \
            "  trial   3: acc=0.512 size=   43.25 kB score=1.234\n"

    def test_trial_respects_quiet(self):
        stream = io.StringIO()
        ConsoleReporter(quiet=True, stream=stream).trial(FakeTrial())
        assert stream.getvalue() == ""

    def test_every_line_flushed_eagerly(self):
        # the whole point of the reporter: piped logs must stream
        class Recording(io.StringIO):
            def __init__(self):
                super().__init__()
                self.flushes = 0

            def flush(self):
                self.flushes += 1
                super().flush()

        stream = Recording()
        reporter = ConsoleReporter(stream=stream)
        reporter.info("a")
        reporter.emit("b")
        assert stream.flushes == 2

    def test_emit_survives_quiet(self):
        stream = io.StringIO()
        reporter = ConsoleReporter(quiet=True, stream=stream)
        reporter.emit("first")
        reporter.emit("second")
        assert stream.getvalue() == "first\nsecond\n"

    def test_multiline_message_kept_verbatim(self):
        stream = io.StringIO()
        ConsoleReporter(stream=stream).emit("a\nb")
        assert stream.getvalue() == "a\nb\n"

    def test_default_stream_is_stdout(self, capsys):
        ConsoleReporter().emit("to stdout")
        assert capsys.readouterr().out == "to stdout\n"
