"""Tests for the Table I search space: cardinality, sampling, operators."""

import numpy as np
import pytest

from repro.quant import QuantizationPolicy
from repro.space import (CIFAR10_WIDTH_CHOICES, CIFAR100_WIDTH_CHOICES,
                         MixedPrecisionGenome, SearchSpace)


class TestCardinality:
    def test_architectures_match_paper(self, c10_space):
        # 30 * 1080^5 * 180 * 5 = 3.967e19
        assert c10_space.num_architectures() == \
            30 * 1080 ** 5 * 180 * 5
        assert c10_space.num_architectures() == pytest.approx(3.96e19,
                                                              rel=5e-3)

    def test_policies_match_paper(self, c10_space):
        assert c10_space.num_policies() == 5 ** 23
        assert c10_space.num_policies() == pytest.approx(1.19e16, rel=5e-3)

    def test_joint_is_product(self, c10_space):
        assert c10_space.num_total() == \
            c10_space.num_architectures() * c10_space.num_policies()

    def test_cifar100_same_cardinality(self, c10_space, c100_space):
        assert c100_space.num_architectures() == \
            c10_space.num_architectures()


class TestMenus:
    def test_width_menus_per_dataset(self, c10_space, c100_space):
        assert c10_space.width_choices == CIFAR10_WIDTH_CHOICES
        assert c100_space.width_choices == CIFAR100_WIDTH_CHOICES

    def test_block1_restrictions(self, c10_space):
        block1 = c10_space.blocks[0]
        assert block1.expansion_choices == (1,)
        assert block1.repetition_choices == (1,)

    def test_block7_repetitions_fixed(self, c10_space):
        assert c10_space.blocks[6].repetition_choices == (1,)

    def test_middle_blocks_fully_searchable(self, c10_space):
        for block in c10_space.blocks[1:6]:
            assert block.num_choices() == 6 * 5 * 6 * 6

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            SearchSpace("imagenet")


class TestSeed:
    def test_seed_matches_table1_bold(self, c10_space):
        seed = c10_space.seed_arch()
        for genes in seed.blocks:
            assert genes.kernel == 3
            assert genes.width_multiplier == 0.1
            assert genes.repetitions == 1
        assert seed.blocks[0].expansion == 1
        for genes in seed.blocks[1:]:
            assert genes.expansion == 6
        assert seed.conv2_filters == 1280

    def test_seed_policy_homogeneous_8(self, c10_space):
        policy = c10_space.seed_policy()
        assert policy.is_homogeneous()
        assert policy.min_bits() == 8
        assert len(policy) == 23

    def test_seed_genome_valid(self, c10_space):
        c10_space.validate(c10_space.seed_genome())

    def test_cifar100_seed_width(self, c100_space):
        assert c100_space.seed_arch().blocks[0].width_multiplier == 0.75


class TestSampling:
    def test_random_genomes_valid(self, c10_space, rng):
        for _ in range(50):
            c10_space.validate(c10_space.random_genome(rng))

    def test_random_genomes_diverse(self, c10_space, rng):
        genomes = {c10_space.random_genome(rng).as_key()
                   for _ in range(30)}
        assert len(genomes) == 30  # astronomically unlikely to collide

    def test_sampling_deterministic_per_seed(self, c10_space):
        a = c10_space.random_genome(np.random.default_rng(5))
        b = c10_space.random_genome(np.random.default_rng(5))
        assert a == b


class TestMutation:
    def test_mutation_changes_and_stays_valid(self, c10_space, rng):
        genome = c10_space.seed_genome()
        changed = 0
        for _ in range(30):
            mutant = c10_space.mutate(genome, rng)
            c10_space.validate(mutant)
            if mutant != genome:
                changed += 1
        assert changed >= 25  # a mutation may redraw the same value

    def test_policy_fixed_mutation_keeps_policy(self, c10_space, rng):
        genome = c10_space.seed_genome()
        for _ in range(20):
            mutant = c10_space.mutate(genome, rng, policy_fixed=True)
            assert mutant.policy == genome.policy

    def test_mutate_arch_single_gene(self, c10_space, rng):
        arch = c10_space.seed_arch()
        diffs = []
        for _ in range(20):
            mutant = c10_space.mutate_arch(arch, rng, n_mutations=1)
            flat_a = [g for b in arch.blocks for g in b.as_tuple()]
            flat_m = [g for b in mutant.blocks for g in b.as_tuple()]
            ndiff = sum(a != m for a, m in zip(flat_a, flat_m))
            ndiff += arch.conv2_filters != mutant.conv2_filters
            diffs.append(ndiff)
        assert max(diffs) <= 1

    def test_mutate_policy_bounded(self, c10_space, rng):
        policy = c10_space.seed_policy()
        mutant = c10_space.mutate_policy(policy, rng, n_mutations=3)
        ndiff = sum(policy.as_dict()[s] != mutant.as_dict()[s]
                    for s in c10_space.slot_names)
        assert ndiff <= 3

    def test_invalid_mutation_count(self, c10_space, rng):
        with pytest.raises(ValueError):
            c10_space.mutate_arch(c10_space.seed_arch(), rng, n_mutations=0)


class TestCrossover:
    def test_child_genes_come_from_parents(self, c10_space, rng):
        a = c10_space.random_genome(rng)
        b = c10_space.random_genome(rng)
        child = c10_space.crossover(a, b, rng)
        c10_space.validate(child)
        for i, genes in enumerate(child.arch.blocks):
            assert genes in (a.arch.blocks[i], b.arch.blocks[i])
        bits = child.policy.as_dict()
        for slot in c10_space.slot_names:
            assert bits[slot] in (a.policy.as_dict()[slot],
                                  b.policy.as_dict()[slot])


class TestValidation:
    def test_rejects_wrong_policy_slots(self, c10_space):
        genome = c10_space.seed_genome()
        bad = MixedPrecisionGenome(
            genome.arch, QuantizationPolicy({"only": 8}))
        with pytest.raises(ValueError):
            c10_space.validate(bad)

    def test_rejects_foreign_width(self, c10_space, c100_space):
        genome = c100_space.seed_genome()  # widths not in CIFAR-10 menu
        with pytest.raises(ValueError):
            c10_space.validate(genome)


class TestEncoding:
    def test_dimension(self, c10_space):
        genome = c10_space.seed_genome()
        vec = c10_space.encode(genome)
        assert vec.shape == (c10_space.encoding_dimension(),)
        assert c10_space.encoding_dimension() == 4 * 7 + 1 + 23

    def test_values_in_unit_interval(self, c10_space, rng):
        for _ in range(20):
            vec = c10_space.encode(c10_space.random_genome(rng))
            assert (vec >= 0).all() and (vec <= 1).all()

    def test_identical_genomes_identical_encodings(self, c10_space, rng):
        g = c10_space.random_genome(rng)
        np.testing.assert_array_equal(c10_space.encode(g),
                                      c10_space.encode(g))

    def test_summary_renders(self, c10_space):
        text = c10_space.summary()
        assert "architectures" in text
        assert "23 slots" in text
