"""Tests for genome -> model construction."""

import numpy as np
import pytest

from repro.nn import InvertedBottleneck
from repro.quant import quantizable_layers
from repro.space import (ArchGenome, BlockGenes, build_model, count_macs,
                         describe_model, scaled_width, stem_channels)


def genome_with_reps(c10_space, reps):
    """Seed genome with per-block repetitions overridden."""
    seed = c10_space.seed_arch()
    blocks = []
    for genes, n in zip(seed.blocks, reps):
        blocks.append(BlockGenes(genes.kernel, genes.width_multiplier,
                                 genes.expansion, n))
    return ArchGenome(blocks=tuple(blocks), conv2_filters=seed.conv2_filters)


class TestScaledWidth:
    def test_rounding(self):
        assert scaled_width(16, 0.1) == 2
        assert scaled_width(24, 0.1) == 2
        assert scaled_width(320, 0.3) == 96

    def test_floor_of_one(self):
        assert scaled_width(16, 0.01) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            scaled_width(0, 0.1)
        with pytest.raises(ValueError):
            scaled_width(16, 0.0)


class TestBuildModel:
    def test_seed_forward_shape(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        out = model.forward(np.zeros((2, 16, 16, 3), dtype=np.float32))
        assert out.shape == (2, 10)

    def test_seed_has_23_quantizable_layers(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        assert len(quantizable_layers(model)) == 23

    def test_all_layers_tagged(self, c10_space, rng):
        model = build_model(c10_space.random_arch(rng), 10, rng=rng)
        for layer in quantizable_layers(model):
            assert getattr(layer, "quant_slot", None) is not None

    def test_repetitions_share_slots(self, c10_space, rng):
        genome = genome_with_reps(c10_space, [1, 3, 1, 1, 1, 1, 1])
        model = build_model(genome, 10, rng=rng)
        ib2_layers = [l for l in quantizable_layers(model)
                      if l.quant_slot and l.quant_slot.startswith("ib2.")]
        assert len(ib2_layers) == 9  # 3 reps x (expand, dw, project)
        slots = {l.quant_slot for l in ib2_layers}
        assert slots == {"ib2.expand", "ib2.dw", "ib2.project"}

    def test_zero_repetition_block_absent(self, c10_space, rng):
        genome = genome_with_reps(c10_space, [1, 0, 0, 0, 0, 0, 1])
        model = build_model(genome, 10, rng=rng)
        slots = {l.quant_slot for l in quantizable_layers(model)}
        assert not any(s.startswith(("ib2.", "ib3.")) for s in slots)
        assert any(s.startswith("ib7.") for s in slots)

    def test_two_stride2_reductions(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        strides = [block.stride for block in model.layers
                   if isinstance(block, InvertedBottleneck)]
        assert strides.count(2) == 2
        # reductions at blocks 5 and 7 (index 4 and 6 in the bottleneck list)
        assert strides[4] == 2
        assert strides[6] == 2

    def test_stride_deferred_when_block5_absent(self, c10_space, rng):
        genome = genome_with_reps(c10_space, [1, 1, 1, 1, 0, 1, 1])
        model = build_model(genome, 10, rng=rng)
        bottlenecks = [b for b in model.layers
                       if isinstance(b, InvertedBottleneck)]
        strided = [b.name for b in bottlenecks if b.stride == 2]
        assert len(strided) == 2
        assert strided[0].startswith("ib6")  # picked up block 5's stride

    def test_residuals_only_within_repeats(self, c10_space, rng):
        genome = genome_with_reps(c10_space, [1, 2, 1, 1, 1, 1, 1])
        # widen block 2 so its channel count differs from block 1's
        blocks = list(genome.blocks)
        blocks[1] = BlockGenes(blocks[1].kernel, 0.3, blocks[1].expansion,
                               blocks[1].repetitions)
        genome = ArchGenome(blocks=tuple(blocks),
                            conv2_filters=genome.conv2_filters)
        model = build_model(genome, 10, rng=rng)
        reps = [b for b in model.layers if isinstance(b, InvertedBottleneck)
                and b.name.startswith("ib2")]
        assert len(reps) == 2
        assert not reps[0].use_residual  # channel change (2 -> 7)
        assert reps[1].use_residual      # same channels, stride 1

    def test_stem_scales_with_block1_width(self, c10_space):
        tiny = c10_space.seed_arch()
        assert stem_channels(tiny) == max(4, round(32 * 0.1))

    def test_trains_on_tiny_input(self, c10_space, rng, tiny_dataset):
        model = build_model(c10_space.seed_arch(),
                            tiny_dataset.num_classes, rng=rng)
        from repro.nn import SGD, ConstantLR, Trainer
        trainer = Trainer(model, SGD(model.parameters(), ConstantLR(0.01)))
        history = trainer.fit(tiny_dataset.x_train[:32],
                              tiny_dataset.y_train[:32], epochs=1,
                              batch_size=16, rng=rng)
        assert np.isfinite(history.train_loss[0])

    def test_num_classes_validation(self, c10_space, rng):
        with pytest.raises(ValueError):
            build_model(c10_space.seed_arch(), 1, rng=rng)

    def test_describe_mentions_slots(self, c10_space, rng):
        text = describe_model(build_model(c10_space.seed_arch(), 10,
                                          rng=rng))
        assert "slot=stem" in text
        assert "slot=classifier" in text


class TestCountMacs:
    def test_seed_at_32_matches_constant(self, c10_space, rng):
        from repro.nas import SEED_MACS_32
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        assert count_macs(model, (32, 32)) == SEED_MACS_32

    def test_scales_with_resolution(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        m16 = count_macs(model, (16, 16))
        m32 = count_macs(model, (32, 32))
        assert 3.0 < m32 / m16 < 5.0  # ~4x, modulo rounding of odd sizes

    def test_wider_model_more_macs(self, c10_space, rng):
        seed = c10_space.seed_arch()
        wide_blocks = tuple(
            BlockGenes(g.kernel, 0.3, g.expansion, g.repetitions)
            for g in seed.blocks)
        wide = ArchGenome(blocks=wide_blocks,
                          conv2_filters=seed.conv2_filters)
        narrow = build_model(seed, 10, rng=rng)
        wider = build_model(wide, 10, rng=rng)
        assert count_macs(wider, (16, 16)) > count_macs(narrow, (16, 16))

    def test_invalid_size(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        with pytest.raises(ValueError):
            count_macs(model, (0, 16))
