"""Tests for the architecture-graph module."""

import networkx as nx
import pytest

from repro.space import (genome_to_graph, graph_stats, model_to_graph,
                         to_dot)
from repro.space.builder import build_model


class TestModelToGraph:
    def test_seed_graph_structure(self, c10_space, rng):
        graph = genome_to_graph(c10_space.seed_arch())
        assert nx.is_directed_acyclic_graph(graph)
        # input + 23 convs/dense + gap + output
        assert graph.number_of_nodes() == 26
        assert graph.has_node("input")
        assert graph.has_node("output")

    def test_skip_edges_match_residuals(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        graph = model_to_graph(model)
        from repro.nn import InvertedBottleneck
        n_residual = sum(1 for b in model.layers
                         if isinstance(b, InvertedBottleneck)
                         and b.use_residual)
        skips = sum(1 for _, _, d in graph.edges(data=True)
                    if d.get("skip"))
        assert skips == n_residual

    def test_params_annotated(self, c10_space, rng):
        model = build_model(c10_space.seed_arch(), 10, rng=rng)
        graph = model_to_graph(model)
        stats = graph_stats(graph)
        # graph counts conv sub-block params (incl. BN of ConvBNReLU)
        assert stats["total_params"] > 0
        assert stats["n_convolutions"] == 22  # 23 layers - 1 dense

    def test_quant_slots_on_nodes(self, c10_space, rng):
        graph = genome_to_graph(c10_space.seed_arch())
        slots = {d.get("quant_slot") for _, d in graph.nodes(data=True)}
        assert "stem" in slots
        assert "classifier" in slots

    def test_single_path_without_residuals(self, c10_space, rng):
        stats = graph_stats(genome_to_graph(c10_space.seed_arch()))
        # depth equals the longest chain: input -> 23 layers -> gap -> out
        assert stats["depth"] == 25


class TestDot:
    def test_dot_renders(self, c10_space):
        dot = to_dot(genome_to_graph(c10_space.seed_arch()))
        assert dot.startswith("digraph")
        assert '"input"' in dot
        assert "skip" in dot  # seed has residual blocks

    def test_dot_balanced_braces(self, c10_space):
        dot = to_dot(genome_to_graph(c10_space.seed_arch()))
        assert dot.count("{") == dot.count("}")
