"""Tests for genome types and the edit distance."""

import numpy as np
import pytest

from repro.quant import QuantizationPolicy
from repro.space import (ArchGenome, BlockGenes, GenomeDistance,
                         MixedPrecisionGenome)


class TestGenomes:
    def test_block_genes_tuple(self):
        genes = BlockGenes(3, 0.1, 6, 1)
        assert genes.as_tuple() == (3, 0.1, 6, 1)

    def test_arch_needs_7_blocks(self):
        with pytest.raises(ValueError):
            ArchGenome(blocks=(BlockGenes(3, 0.1, 6, 1),) * 6,
                       conv2_filters=1280)

    def test_active_blocks(self, c10_space, rng):
        seed = c10_space.seed_arch()
        assert seed.active_blocks() == (1, 2, 3, 4, 5, 6, 7)
        blocks = list(seed.blocks)
        blocks[2] = BlockGenes(3, 0.1, 6, 0)
        pruned = ArchGenome(blocks=tuple(blocks), conv2_filters=1280)
        assert 3 not in pruned.active_blocks()

    def test_genome_hash_eq(self, c10_space, rng):
        a = c10_space.random_genome(rng)
        same = MixedPrecisionGenome(a.arch, a.policy)
        assert a == same
        assert hash(a) == hash(same)
        other = c10_space.random_genome(rng)
        assert a != other

    def test_describe(self, c10_space):
        text = c10_space.seed_arch().describe()
        assert "ib1" in text and "conv2" in text


class TestGenomeDistance:
    @pytest.fixture
    def dist(self, c10_space):
        return GenomeDistance(c10_space, policy_weight=0.5)

    def test_identity(self, dist, c10_space, rng):
        g = c10_space.random_genome(rng)
        assert dist(g, g) == 0.0

    def test_symmetry(self, dist, c10_space, rng):
        a = c10_space.random_genome(rng)
        b = c10_space.random_genome(rng)
        assert dist(a, b) == pytest.approx(dist(b, a))

    def test_triangle_inequality(self, dist, c10_space, rng):
        for _ in range(20):
            a = c10_space.random_genome(rng)
            b = c10_space.random_genome(rng)
            c = c10_space.random_genome(rng)
            assert dist(a, c) <= dist(a, b) + dist(b, c) + 1e-12

    def test_bounded_by_one(self, dist, c10_space, rng):
        for _ in range(20):
            a = c10_space.random_genome(rng)
            b = c10_space.random_genome(rng)
            assert 0.0 <= dist(a, b) <= 1.0 + 1e-12

    def test_single_mutation_small_distance(self, dist, c10_space, rng):
        g = c10_space.seed_genome()
        mutant = c10_space.mutate(g, rng)
        assert 0.0 <= dist(g, mutant) < 0.1

    def test_policy_weight_scales_policy_changes(self, c10_space, rng):
        g = c10_space.seed_genome()
        flipped = MixedPrecisionGenome(
            g.arch, c10_space.mutate_policy(g.policy, rng, n_mutations=5))
        light = GenomeDistance(c10_space, policy_weight=0.1)
        heavy = GenomeDistance(c10_space, policy_weight=2.0)
        assert heavy(g, flipped) > light(g, flipped)

    def test_pairwise_matches_scalar(self, dist, c10_space, rng):
        genomes = [c10_space.random_genome(rng) for _ in range(5)]
        vectors = np.stack([dist.encode(g) for g in genomes])
        matrix = dist.pairwise(vectors)
        for i in range(5):
            for j in range(5):
                assert matrix[i, j] == pytest.approx(
                    dist(genomes[i], genomes[j]), abs=1e-12)

    def test_pairwise_rectangular(self, dist, c10_space, rng):
        va = np.stack([dist.encode(c10_space.random_genome(rng))
                       for _ in range(3)])
        vb = np.stack([dist.encode(c10_space.random_genome(rng))
                       for _ in range(4)])
        assert dist.pairwise(va, vb).shape == (3, 4)

    def test_negative_weight_rejected(self, c10_space):
        with pytest.raises(ValueError):
            GenomeDistance(c10_space, policy_weight=-1.0)

    def test_dimension_mismatch_raises(self, dist):
        with pytest.raises(ValueError):
            dist.distance_from_vectors(np.zeros(3), np.zeros(4))
