"""Talk to a ``repro serve`` daemon over its JSON/HTTP protocol.

Self-contained: builds a tiny ``.bomp`` artifact, starts a ``ServeDaemon``
in-process on an ephemeral port, then exercises the full client protocol
with nothing but ``urllib`` — exactly what an external client would do
against ``python -m repro serve``:

- ``GET  /healthz``                         liveness probe,
- ``POST /v1/models/<name>/load``           hot-load an artifact,
- ``GET  /v1/models``                       registry listing,
- ``POST /v1/models/<name>/predict``        single image and batch,
  (concurrent single-image requests are coalesced by the dynamic
  batcher into one arena pass — same bits as serial inference),
- ``GET  /v1/stats``                        live latency/shed counters,
- graceful drain on shutdown.

To point this at a real daemon instead, start one in another terminal:

    python -m repro serve --model demo=model.bomp --port 8700

and set BASE = "http://127.0.0.1:8700".

Run:
    python examples/serve_client.py      # ~30 seconds
"""

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro.serve import ServeConfig, ServeDaemon
from repro.serve.bench import make_bench_artifact


def call(base: str, method: str, route: str, payload=None):
    """One JSON round trip; returns the decoded response body."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + route, data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode())


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = make_bench_artifact(Path(tmp) / "demo.bomp",
                                            image_size=16, seed=7)
        daemon = ServeDaemon(ServeConfig(port=0, max_batch=8,
                                         max_wait_ms=5.0,
                                         run_dir=Path(tmp) / "serve"))
        host, port = daemon.start()
        base = f"http://{host}:{port}"
        try:
            print(f"daemon up at {base}")
            print("healthz:", call(base, "GET", "/healthz"))

            call(base, "POST", "/v1/models/demo/load",
                 {"path": str(artifact_path)})
            models = call(base, "GET", "/v1/models")["models"]
            info = next(m for m in models if m["name"] == "demo")
            print(f"loaded 'demo': input {info['input_shape']}, "
                  f"{info['num_classes']} classes\n")

            rng = np.random.default_rng(23)
            shape = tuple(info["input_shape"])
            one = rng.standard_normal(shape).astype(np.float32)
            reply = call(base, "POST", "/v1/models/demo/predict",
                         {"inputs": one.tolist()})
            print(f"single image  -> class {reply['predictions'][0]}")

            batch = rng.standard_normal((6,) + shape).astype(np.float32)
            reply = call(base, "POST", "/v1/models/demo/predict",
                         {"inputs": batch.tolist(),
                          "return_logits": True})
            print(f"batch of 6    -> classes {reply['predictions']} "
                  f"(logits shape {np.asarray(reply['logits']).shape})")

            # concurrent clients: the batcher coalesces these into
            # shared arena passes; results match serial bit-for-bit
            answers = [None] * 8

            def client(i: int) -> None:
                body = {"inputs": batch[i % 6].tolist()}
                answers[i] = call(base, "POST",
                                  "/v1/models/demo/predict",
                                  body)["predictions"][0]

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            print(f"8 concurrent  -> classes {answers}\n")

            stats = call(base, "GET", "/v1/stats")
            served = next(m for m in stats["models"]
                          if m["name"] == "demo")
            mean_batch = served["images_run"] / served["batches_run"]
            print(f"served {served['images_run']} images in "
                  f"{served['batches_run']} arena passes "
                  f"(mean batch {mean_batch:.2f})")
        finally:
            stats = daemon.shutdown(drain=True)
            print(f"drained cleanly: {stats['drained_cleanly']}")


if __name__ == "__main__":
    main()
