"""BOMP-NAS vs its comparators under the same trial budget.

Runs, on the same CIFAR-10 surrogate and search space:

- BOMP-NAS (BO + MP + QAFT in the loop),
- the JASQ reproduction (aging evolution + MP PTQ),
- the sequential NAS-then-quantize baseline (full-precision search, then a
  post-hoc quantization policy search).

Prints each method's best-so-far score trajectory and final front — the
Section V comparison in miniature: BO converges on good scalarized scores
in fewer trials than evolution, and joint search beats sequential.

Run:
    python examples/compare_baselines.py     # ~5 minutes on CPU
"""

from repro import BOMPNAS, SearchConfig, get_scale, synthetic_cifar10
from repro.baselines import JASQSearch, SequentialSearch


def trajectory_line(name: str, trajectory) -> str:
    points = " ".join(f"{score:.2f}" for score in trajectory)
    return f"{name:<12} {points}"


def main() -> None:
    scale = get_scale()
    dataset = synthetic_cifar10(n_train=scale.n_train, n_test=scale.n_test,
                                image_size=scale.image_size, seed=0)
    config = SearchConfig(dataset="cifar10", scale=scale, seed=3)

    print(f"budget: {scale.trials} trials each\n")

    bomp = BOMPNAS(config, dataset).run(final_training=True)
    jasq = JASQSearch(config, dataset).run(final_training=True)
    stage1, policies = SequentialSearch(config, dataset,
                                        policy_trials=8).run()

    print("best-so-far score per trial:")
    print(trajectory_line("BOMP-NAS", bomp.score_trajectory()))
    print(trajectory_line("JASQ repr.", jasq.score_trajectory()))
    print(trajectory_line("sequential", stage1.score_trajectory()))

    print("\nfinal fronts (accuracy, size kB):")
    for name, result in (("BOMP-NAS", bomp), ("JASQ repr.", jasq),
                         ("sequential", stage1)):
        front = ", ".join(f"({acc:.3f}, {kb:.1f})"
                          for acc, kb in result.final_front())
        print(f"  {name:<12} [{front}]")

    best_policy, best_accuracy, best_kb = policies[0]
    print(f"\nsequential stage-2 best policy: acc={best_accuracy:.3f} "
          f"size={best_kb:.1f} kB "
          f"(bits {sorted(set(best_policy.as_dict().values()))})")

    print(f"\nsimulated GPU-hours — BOMP: {bomp.search_gpu_hours():.3f}, "
          f"JASQ: {jasq.search_gpu_hours():.3f}, "
          f"sequential stage 1: {stage1.search_gpu_hours():.3f}")


if __name__ == "__main__":
    main()
