"""Search → export → integer-only inference, end to end.

Runs a small BOMP-NAS search on the CIFAR-10 surrogate, exports the
best candidate into a deployable artifact (quantized weight container +
BatchNorm statistics + genome), then deploys it with the ``repro.infer``
engine:

- rebuilds the fake-quant reference from the artifact alone,
- compiles the integer-only program (folded BN, fixed-point
  requantization, INT32 accumulation — no float on the hot path),
- prints the deployment cost report (MACs, packed weight bytes, peak
  INT8 activation memory),
- checks parity against the reference (per-stage LSB budgets + top-1
  agreement), and
- reports deployed accuracy on the regenerated test set.

Run:
    python examples/deploy_and_infer.py      # smoke scale, ~1 minute
"""

import tempfile
from pathlib import Path

from repro import BOMPNAS, SearchConfig, get_scale, synthetic_cifar10
from repro.infer import (check_parity, deployment_report, export_run,
                         format_report, load_artifact, save_artifact)


def main() -> None:
    scale = get_scale()
    dataset = synthetic_cifar10(n_train=scale.n_train, n_test=scale.n_test,
                                image_size=scale.image_size, seed=0)
    config = SearchConfig(dataset="cifar10", scale=scale, seed=0)
    print(f"searching ({config.describe()})...")
    result = BOMPNAS(config, dataset).run(final_training=False)
    best = result.best_trial()
    print(f"best trial #{best.index}: acc={best.accuracy:.3f} "
          f"size={best.size_kb:.2f} kB\n")

    with tempfile.TemporaryDirectory() as tmp:
        result_path = Path(tmp) / "result.json"
        result.save(str(result_path))

        # what `repro export <run_dir>` does: re-materialize the final
        # model deterministically and package it
        print("exporting (re-runs final training deterministically)...")
        artifact, final = export_run(result_path)
        artifact_path = save_artifact(artifact, Path(tmp) / "model.bomp")
        print(f"artifact: {artifact_path.stat().st_size / 1024:.2f} kB "
              f"on disk\n")

        # what `repro infer <artifact>` does: rebuild, compile, deploy
        artifact = load_artifact(artifact_path)
        model = artifact.rebuild()
        program = artifact.compile(name="deployed")
        print(format_report(deployment_report(program)))

        x, y = artifact.test_set()
        print(f"\n{check_parity(model, program, x[:64]).format()}")
        accuracy = program.accuracy(x, y)
        print(f"\nfake-quant accuracy:      {final.accuracy:.3f}")
        print(f"integer-engine accuracy:  {accuracy:.3f}")


if __name__ == "__main__":
    main()
