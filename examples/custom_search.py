"""Customizing the search: objectives, bitwidth menu, policy re-use.

Shows the knobs a downstream user actually turns:

1. custom scalarization references (trade accuracy against size harder),
2. a restricted bitwidth menu ({4, 8} only),
3. the paper's future-work extension — re-using each early-trained network
   for several quantization policies (``policies_per_trial``), which
   extracts more surrogate updates per GPU-hour.

Run:
    python examples/custom_search.py
"""

from dataclasses import replace

from repro import (BOMPNAS, ScalarizationConfig, SearchConfig, get_scale,
                   synthetic_cifar10)
from repro.space import SearchSpace


def main() -> None:
    scale = get_scale()
    dataset = synthetic_cifar10(n_train=scale.n_train, n_test=scale.n_test,
                                image_size=scale.image_size, seed=0)

    # 1. push harder for small models: raise the size reference weight
    aggressive = ScalarizationConfig(ref_accuracy=0.8, ref_model_size=12.0)
    config = SearchConfig(dataset="cifar10", scale=scale, seed=4,
                          scalarization=aggressive)
    result = BOMPNAS(config, dataset).run(final_training=False)
    sizes = [trial.size_kb for trial in result.trials]
    print(f"aggressive size objective: mean sampled size "
          f"{sum(sizes) / len(sizes):.1f} kB")

    # 2. a restricted {4, 8} bitwidth menu
    space = SearchSpace("cifar10", bitwidth_choices=(4, 8))
    print(f"restricted menu: {space.num_policies():.2e} policies "
          f"(vs {SearchSpace('cifar10').num_policies():.2e} full)")
    restricted = BOMPNAS(config, dataset, space=space).run(
        final_training=False)
    used_bits = set()
    for trial in restricted.trials:
        used_bits |= set(trial.genome.policy.as_dict().values())
    print(f"bits used by the restricted search: {sorted(used_bits)}")

    # 3. policy re-use (paper future work): 3 policies per trained network
    reuse_scale = replace(scale, name="reuse", trials=scale.trials)
    reuse_config = SearchConfig(dataset="cifar10", scale=reuse_scale,
                                seed=4, policies_per_trial=3)
    reuse = BOMPNAS(reuse_config, dataset).run(final_training=False)
    print(f"\npolicy re-use: {len(reuse.trials)} surrogate observations "
          f"for {reuse.search_gpu_hours():.3g} simulated GPU-hours")
    print(f"plain search:  {len(result.trials)} observations "
          f"for {result.search_gpu_hours():.3g} simulated GPU-hours")
    per_obs_reuse = reuse.search_gpu_hours() / len(reuse.trials)
    per_obs_plain = result.search_gpu_hours() / len(result.trials)
    print(f"cost per observation: {per_obs_reuse:.3g} vs "
          f"{per_obs_plain:.3g} GPU-hours ({per_obs_plain / per_obs_reuse:.1f}x cheaper)")


if __name__ == "__main__":
    main()
