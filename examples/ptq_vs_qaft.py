"""The quantization toolkit standalone: PTQ vs QAFT on a trained network.

Trains the seed MobileNetV2 on the CIFAR-10 surrogate, then deploys it at
8/6/5/4-bit weight precision twice — once with plain post-training
quantization (PTQ) and once adding one epoch of quantization-aware
fine-tuning (QAFT).  Reproduces, on one model, the paper's central
observation: PTQ collapses at low bitwidths and QAFT recovers most of the
loss, which is why BOMP-NAS puts QAFT *inside* the search loop.

Run:
    python examples/ptq_vs_qaft.py
"""

import numpy as np

from repro import SearchSpace, build_model, synthetic_cifar10
from repro.nn import (SGD, CosineDecayLR, Trainer, evaluate_classifier,
                      load_state_dict, state_dict)
from repro.quant import (apply_policy, calibrate,
                         quantization_aware_finetune, remove_quantizers,
                         model_size_kb, size_report)


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = synthetic_cifar10(n_train=1500, n_test=400, image_size=16,
                                seed=1)
    space = SearchSpace("cifar10")
    model = build_model(space.seed_arch(), 10, rng=rng)

    print("training the seed MobileNetV2 (full precision)...")
    steps = 10 * (dataset.n_train // 64 + 1)
    trainer = Trainer(model, SGD(model.parameters(),
                                 CosineDecayLR(0.05, steps)))
    trainer.fit(dataset.x_train, dataset.y_train, epochs=10, batch_size=64,
                rng=rng)
    _, fp_accuracy = evaluate_classifier(model, dataset.x_test,
                                         dataset.y_test)
    print(f"float32 accuracy: {fp_accuracy:.3f}\n")

    snapshot = state_dict(model)
    print(f"{'bits':>4} {'size kB':>9} {'PTQ acc':>8} {'QAFT acc':>9} "
          f"{'recovered':>9}")
    for bits in (8, 6, 5, 4):
        remove_quantizers(model)
        load_state_dict(model, snapshot)
        policy = space.seed_policy(bits)
        apply_policy(model, policy)
        calibrate(model, dataset.x_train[:256])
        _, ptq_accuracy = evaluate_classifier(model, dataset.x_test,
                                              dataset.y_test)
        quantization_aware_finetune(model, dataset.x_train,
                                    dataset.y_train, epochs=1,
                                    batch_size=64, rng=rng)
        _, qaft_accuracy = evaluate_classifier(model, dataset.x_test,
                                               dataset.y_test)
        size_kb = model_size_kb(model)
        recovered = qaft_accuracy - ptq_accuracy
        print(f"{bits:>4} {size_kb:>9.2f} {ptq_accuracy:>8.3f} "
              f"{qaft_accuracy:>9.3f} {recovered:>+9.3f}")

    print("\nper-layer size breakdown at 4-bit:")
    remove_quantizers(model)
    print(size_report(model, space.seed_policy(4)))


if __name__ == "__main__":
    main()
