"""Regenerate the paper's Fig. 2 and Fig. 3 from the command line.

Runs (or loads from cache) the MP QAFT-aware search on the CIFAR-10
surrogate with the paper's reference values (ref_acc = 0.8,
ref_model_size = 8), then renders:

- the candidate scatter with the seed marker (Fig. 2), and
- the per-layer bitwidth distribution of the final Pareto models (Fig. 3).

Run:
    python examples/cifar10_figure2.py              # smoke scale
    BOMP_SCALE=medium python examples/cifar10_figure2.py   # longer, richer
"""

from repro.experiments import ExperimentContext, fig2, fig3


def main() -> None:
    ctx = ExperimentContext()  # scale from BOMP_SCALE, disk-cached
    print("generating Fig. 2 (this runs the search on first call)...\n")
    _, fig2_text = fig2(ctx)
    print(fig2_text)
    print("\ngenerating Fig. 3...\n")
    _, fig3_text = fig3(ctx)
    print(fig3_text)


if __name__ == "__main__":
    main()
