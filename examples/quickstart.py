"""Quickstart: run a small BOMP-NAS search end to end.

Samples (architecture, mixed-precision policy) candidates with Bayesian
optimization, early-trains each in full precision, quantizes, fine-tunes
quantization-aware (QAFT), and prints the resulting Pareto front of
deployable models.

Run:
    python examples/quickstart.py            # ~2-3 minutes on CPU
    BOMP_SCALE=unit python examples/quickstart.py   # seconds, degenerate
"""

from repro import BOMPNAS, SearchConfig, get_scale, synthetic_cifar10


def main() -> None:
    scale = get_scale()  # BOMP_SCALE env var, default "smoke"
    dataset = synthetic_cifar10(n_train=scale.n_train, n_test=scale.n_test,
                                image_size=scale.image_size, seed=0)
    config = SearchConfig(dataset="cifar10", scale=scale, seed=0)
    print(f"running {config.describe()}")

    def progress(trial):
        print(f"  trial {trial.index:>3}: acc={trial.accuracy:.3f} "
              f"size={trial.size_kb:7.2f} kB score={trial.score:.3f}")

    nas = BOMPNAS(config, dataset, progress=progress)
    result = nas.run(final_training=True)

    print()
    print(result.summary())
    print()
    print("final Pareto front (accuracy, size kB):")
    for accuracy, size_kb in result.final_front():
        print(f"  {accuracy:.3f}  {size_kb:9.2f}")
    print(f"simulated search cost: {result.search_gpu_hours():.3g} GPU-hours")


if __name__ == "__main__":
    main()
